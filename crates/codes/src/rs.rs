//! Systematic Reed–Solomon `(k, m)` — the code Google and Facebook deploy
//! (paper §II-C) and the first candidate code the paper transforms.
//!
//! Two generator constructions are offered:
//!
//! * **Vandermonde-derived** ([`RsCode::vandermonde`]) — the classic Plank
//!   construction: column-reduce a `(k+m) × k` Vandermonde matrix until
//!   its top block is the identity; the bottom `m × k` block is the
//!   parity matrix. MDS: any `m` erasures decode.
//! * **Cauchy** ([`RsCode::cauchy`]) — identity stacked over a Cauchy
//!   block; every square submatrix of a Cauchy matrix is invertible, so
//!   the result is MDS by construction (Blömer et al., the basis of
//!   "Cauchy Reed–Solomon" in the paper's related work).

use crate::traits::{CandidateCode, ElementClass};
use ecfrm_gf::{Gf8, Matrix};

/// Which generator construction an [`RsCode`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsVariant {
    /// Plank's systematic-Vandermonde derivation.
    Vandermonde,
    /// Identity-over-Cauchy.
    Cauchy,
}

/// Systematic Reed–Solomon over `GF(2^8)`: `k` data elements, `m` parity
/// elements, tolerating any `m` erasures (MDS).
#[derive(Debug, Clone)]
pub struct RsCode {
    k: usize,
    m: usize,
    variant: RsVariant,
    parity: Matrix<Gf8>,
    generator: Matrix<Gf8>,
}

impl RsCode {
    /// Construct with the Vandermonde-derived generator.
    ///
    /// # Panics
    /// Panics if `k == 0`, `m == 0`, or `k + m > 255` (positions would
    /// repeat in `GF(2^8)`).
    pub fn vandermonde(k: usize, m: usize) -> Self {
        Self::build(k, m, RsVariant::Vandermonde)
    }

    /// Construct with the Cauchy generator.
    ///
    /// # Panics
    /// Panics if `k == 0`, `m == 0`, or `k + m > 256`.
    pub fn cauchy(k: usize, m: usize) -> Self {
        Self::build(k, m, RsVariant::Cauchy)
    }

    fn build(k: usize, m: usize, variant: RsVariant) -> Self {
        assert!(k > 0 && m > 0, "RS requires k > 0 and m > 0");
        let parity = match variant {
            RsVariant::Vandermonde => {
                assert!(k + m <= 255, "RS(k,m) needs k+m <= 255 in GF(2^8)");
                Matrix::<Gf8>::systematic_vandermonde_parity(k, m)
            }
            RsVariant::Cauchy => {
                assert!(k + m <= 256, "Cauchy RS(k,m) needs k+m <= 256 in GF(2^8)");
                Matrix::<Gf8>::cauchy(m, k)
            }
        };
        let generator = Matrix::<Gf8>::identity(k).vstack(&parity);
        Self {
            k,
            m,
            variant,
            parity,
            generator,
        }
    }

    /// Which construction this instance uses.
    pub fn variant(&self) -> RsVariant {
        self.variant
    }
}

impl CandidateCode for RsCode {
    fn k(&self) -> usize {
        self.k
    }

    fn m(&self) -> usize {
        self.m
    }

    fn name(&self) -> String {
        match self.variant {
            RsVariant::Vandermonde => format!("RS({},{})", self.k, self.m),
            RsVariant::Cauchy => format!("CRS({},{})", self.k, self.m),
        }
    }

    fn parity_matrix(&self) -> &Matrix<Gf8> {
        &self.parity
    }

    fn generator(&self) -> &Matrix<Gf8> {
        &self.generator
    }

    fn classify(&self, idx: usize) -> ElementClass {
        if idx < self.k {
            ElementClass::Data
        } else {
            ElementClass::GlobalParity
        }
    }

    fn fault_tolerance(&self) -> usize {
        // MDS: any m erasures decode.
        self.m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::RepairSpec;

    fn sample_data(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 131 + j * 7 + 3) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn encode_all(code: &RsCode, data: &[Vec<u8>], len: usize) -> Vec<Vec<u8>> {
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let mut parity = vec![vec![0u8; len]; code.m()];
        code.encode(&refs, &mut parity);
        parity
    }

    #[test]
    fn roundtrip_all_paper_parameters() {
        for (k, m) in [(6usize, 3usize), (8, 4), (10, 5)] {
            for variant in [RsVariant::Vandermonde, RsVariant::Cauchy] {
                let code = RsCode::build(k, m, variant);
                let len = 64;
                let data = sample_data(k, len);
                let parity = encode_all(&code, &data, len);
                // Erase the worst case: m elements, mixed data/parity.
                let mut shards: Vec<Option<Vec<u8>>> = data
                    .iter()
                    .cloned()
                    .map(Some)
                    .chain(parity.iter().cloned().map(Some))
                    .collect();
                for i in 0..m {
                    shards[i * 2] = None; // spread erasures
                }
                code.decode(&mut shards, len).unwrap();
                for (i, d) in data.iter().enumerate() {
                    assert_eq!(shards[i].as_deref().unwrap(), &d[..], "{k},{m} data {i}");
                }
                for (i, p) in parity.iter().enumerate() {
                    assert_eq!(shards[k + i].as_deref().unwrap(), &p[..]);
                }
            }
        }
    }

    #[test]
    fn any_m_erasures_recoverable_exhaustive_6_3() {
        let code = RsCode::vandermonde(6, 3);
        let n = 9;
        for a in 0..n {
            for b in a + 1..n {
                for c in b + 1..n {
                    assert!(
                        code.is_recoverable(&[a, b, c]),
                        "pattern [{a},{b},{c}] must decode (MDS)"
                    );
                }
            }
        }
    }

    #[test]
    fn m_plus_one_erasures_never_recoverable() {
        let code = RsCode::vandermonde(6, 3);
        // Any 4 erasures exceed MDS capacity.
        assert!(!code.is_recoverable(&[0, 1, 2, 3]));
        assert!(!code.is_recoverable(&[5, 6, 7, 8]));
    }

    #[test]
    fn decode_recovers_after_m_random_failures() {
        let code = RsCode::cauchy(10, 5);
        let len = 33;
        let data = sample_data(10, len);
        let parity = encode_all(&code, &data, len);
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.iter().cloned().map(Some))
            .collect();
        for i in [14usize, 0, 9, 3, 7] {
            shards[i] = None;
        }
        code.decode(&mut shards, len).unwrap();
        for (i, d) in data.iter().enumerate() {
            assert_eq!(shards[i].as_deref().unwrap(), &d[..]);
        }
    }

    #[test]
    fn repair_spec_is_any_k_of_survivors() {
        let code = RsCode::vandermonde(6, 3);
        let spec = code
            .repair_spec(2, &[2])
            .expect("single failure repairable");
        match spec {
            RepairSpec::AnyOf { from, count } => {
                assert_eq!(count, 6);
                assert_eq!(from.len(), 8);
                assert!(!from.contains(&2));
            }
            other => panic!("expected AnyOf, got {other:?}"),
        }
    }

    #[test]
    fn repair_spec_fails_beyond_tolerance() {
        let code = RsCode::vandermonde(6, 3);
        assert!(code.repair_spec(0, &[0, 1, 2, 3]).is_none());
    }

    #[test]
    fn zero_length_regions_encode() {
        let code = RsCode::vandermonde(4, 2);
        let data = sample_data(4, 0);
        let parity = encode_all(&code, &data, 0);
        assert!(parity.iter().all(|p| p.is_empty()));
    }

    #[test]
    fn parity_is_linear_in_data() {
        // encode(a ^ b) == encode(a) ^ encode(b): linearity is what the
        // EC-FRM group construction relies on.
        let code = RsCode::vandermonde(6, 3);
        let len = 40;
        let a = sample_data(6, len);
        let b: Vec<Vec<u8>> = (0..6)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 31 + j * 17 + 11) % 256) as u8)
                    .collect()
            })
            .collect();
        let ab: Vec<Vec<u8>> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| x.iter().zip(y).map(|(p, q)| p ^ q).collect())
            .collect();
        let pa = encode_all(&code, &a, len);
        let pb = encode_all(&code, &b, len);
        let pab = encode_all(&code, &ab, len);
        for i in 0..3 {
            let want: Vec<u8> = pa[i].iter().zip(&pb[i]).map(|(x, y)| x ^ y).collect();
            assert_eq!(pab[i], want);
        }
    }

    #[test]
    fn names_and_accessors() {
        let v = RsCode::vandermonde(6, 3);
        assert_eq!(v.name(), "RS(6,3)");
        assert_eq!(v.n(), 9);
        assert_eq!(v.fault_tolerance(), 3);
        assert_eq!(v.classify(0), ElementClass::Data);
        assert_eq!(v.classify(8), ElementClass::GlobalParity);
        let c = RsCode::cauchy(4, 2);
        assert_eq!(c.name(), "CRS(4,2)");
        assert_eq!(c.variant(), RsVariant::Cauchy);
    }

    #[test]
    #[should_panic]
    fn zero_k_panics() {
        RsCode::vandermonde(0, 3);
    }
}

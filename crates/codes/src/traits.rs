//! The [`CandidateCode`] trait: what EC-FRM requires of a code it
//! integrates, plus the error and repair-plan types shared by all codes.

use ecfrm_gf::{Gf8, Matrix};

/// Errors produced by encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodeError {
    /// The erasure pattern cannot be decoded: the surviving generator rows
    /// do not span the data space.
    Unrecoverable {
        /// Indices (stripe positions `0..n`) of the erased elements.
        erased: Vec<usize>,
    },
    /// Shard vector length, shard sizes, or element index was inconsistent
    /// with the code parameters.
    Shape(String),
}

impl std::fmt::Display for CodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodeError::Unrecoverable { erased } => {
                write!(f, "erasure pattern {erased:?} is not recoverable")
            }
            CodeError::Shape(msg) => write!(f, "shape error: {msg}"),
        }
    }
}

impl std::error::Error for CodeError {}

/// The role an element plays inside one candidate-code row.
///
/// Positions `0..k` are always data; `k..n` are parities whose flavour the
/// concrete code defines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElementClass {
    /// Original user data.
    Data,
    /// A parity computed from a subset of the row (LRC local parity); the
    /// payload is the local-group index.
    LocalParity(usize),
    /// A parity computed from the whole row (RS parity, LRC global parity).
    GlobalParity,
}

/// A plan describing which surviving elements must be read to reconstruct
/// one erased element, as reported by [`CandidateCode::repair_spec`].
///
/// Read planners use this to choose sources that minimise the load on the
/// most-loaded disk (the paper's bottleneck metric, §III-B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairSpec {
    /// Any `count` elements of `from` suffice (MDS-style repair: for
    /// Reed–Solomon, any `k` surviving elements of the row).
    AnyOf {
        /// Candidate source positions (all surviving).
        from: Vec<usize>,
        /// How many of them are required.
        count: usize,
    },
    /// Exactly these elements must be read (LRC local repair reads its
    /// local group, nothing else helps).
    Exact {
        /// Required source positions.
        read: Vec<usize>,
    },
}

impl RepairSpec {
    /// Number of elements a planner will end up reading for this repair.
    pub fn read_count(&self) -> usize {
        match self {
            RepairSpec::AnyOf { count, .. } => *count,
            RepairSpec::Exact { read } => read.len(),
        }
    }
}

/// A systematic one-row erasure code that EC-FRM can integrate
/// ("candidate code", paper §IV-A).
///
/// Element positions within a row are `0..n`: data at `0..k`, parity at
/// `k..n`. The code is fully described by its `n × k` generator matrix
/// `[I_k; P]` — every element is a known linear combination of the `k`
/// data elements, which is what makes the generic matrix decoder and the
/// EC-FRM group transformation possible.
pub trait CandidateCode: Send + Sync + std::fmt::Debug {
    /// Number of data elements per row.
    fn k(&self) -> usize;

    /// Number of parity elements per row.
    fn m(&self) -> usize;

    /// Total elements per row (`k + m`).
    fn n(&self) -> usize {
        self.k() + self.m()
    }

    /// Human-readable name, e.g. `"RS(6,3)"` or `"LRC(6,2,2)"`.
    fn name(&self) -> String;

    /// The `m × k` parity coefficient block: parity `i` is
    /// `Σ_j P[i][j] · d_j` over `GF(2^8)`.
    fn parity_matrix(&self) -> &Matrix<Gf8>;

    /// The full `n × k` generator `[I_k; P]`.
    fn generator(&self) -> &Matrix<Gf8>;

    /// Classify element `idx` (data / local parity / global parity).
    fn classify(&self, idx: usize) -> ElementClass {
        if idx < self.k() {
            ElementClass::Data
        } else {
            ElementClass::GlobalParity
        }
    }

    /// Number of simultaneous erasures this code is *guaranteed* to
    /// tolerate (any pattern of that size decodes). MDS codes tolerate
    /// `m`; LRC tolerates fewer than its parity count in the worst case.
    fn fault_tolerance(&self) -> usize;

    /// Compute all `m` parities from the `k` data regions in one fused
    /// streaming pass (each data block is read once while cache-hot
    /// instead of once per parity).
    ///
    /// # Panics
    /// Panics if slice arities or lengths mismatch the code parameters.
    fn encode(&self, data: &[&[u8]], parity: &mut [Vec<u8>]) {
        assert_eq!(data.len(), self.k(), "encode expects k data regions");
        assert_eq!(parity.len(), self.m(), "encode expects m parity regions");
        let pm = self.parity_matrix();
        let rows: Vec<Vec<u8>> = (0..self.m())
            .map(|i| pm.row(i).iter().map(|&c| c as u8).collect())
            .collect();
        let row_refs: Vec<&[u8]> = rows.iter().map(Vec::as_slice).collect();
        let mut dsts: Vec<&mut [u8]> = parity.iter_mut().map(Vec::as_mut_slice).collect();
        ecfrm_gf::region::dot_region_multi(&row_refs, data, &mut dsts);
    }

    /// Reconstruct every `None` shard in place. `len` is the region size
    /// in bytes (used to allocate reconstructed shards).
    fn decode(&self, shards: &mut [Option<Vec<u8>>], len: usize) -> Result<(), CodeError> {
        crate::decode::matrix_decode(self.generator(), shards, len)
    }

    /// True when the erasure pattern (positions in `0..n`) is decodable.
    fn is_recoverable(&self, erased: &[usize]) -> bool {
        crate::decode::pattern_recoverable(self.generator(), erased)
    }

    /// How to reconstruct the single element `target` when the elements in
    /// `erased` (which should include `target`) are unavailable. Returns
    /// `None` when the pattern makes `target` unrecoverable.
    ///
    /// The default is the MDS plan: any `k` surviving elements.
    fn repair_spec(&self, target: usize, erased: &[usize]) -> Option<RepairSpec> {
        let n = self.n();
        debug_assert!(target < n);
        if !self.is_recoverable_target(target, erased) {
            return None;
        }
        let from: Vec<usize> = (0..n)
            .filter(|i| *i != target && !erased.contains(i))
            .collect();
        if from.len() < self.k() {
            return None;
        }
        Some(RepairSpec::AnyOf {
            from,
            count: self.k(),
        })
    }

    /// True when `target` specifically can be reconstructed under the
    /// erasure pattern (weaker than full-pattern recoverability for
    /// non-MDS codes; equal to it for MDS codes).
    fn is_recoverable_target(&self, target: usize, erased: &[usize]) -> bool {
        crate::decode::target_recoverable(self.generator(), target, erased)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repair_spec_read_count() {
        let a = RepairSpec::AnyOf {
            from: vec![1, 2, 3, 4],
            count: 3,
        };
        assert_eq!(a.read_count(), 3);
        let e = RepairSpec::Exact { read: vec![5, 6] };
        assert_eq!(e.read_count(), 2);
    }

    #[test]
    fn code_error_display() {
        let e = CodeError::Unrecoverable { erased: vec![0, 3] };
        assert!(e.to_string().contains("[0, 3]"));
        let s = CodeError::Shape("bad".into());
        assert!(s.to_string().contains("bad"));
    }
}

//! Generic matrix decoding for any systematic one-row code.
//!
//! Every element of a candidate code is a known linear combination of the
//! `k` data elements (a row of the `n × k` generator `[I_k; P]`). An
//! erased element `e` is reconstructible iff its generator row lies in the
//! row space of the surviving rows; the decoder finds the combination
//! `x` with `xᵀ · A = g_e` (where `A` stacks surviving rows) and replays
//! it over the surviving byte regions. This one mechanism covers MDS
//! decoding (Reed–Solomon), LRC local *and* global repair, and the partial
//! patterns where only some erased elements can be saved.

use crate::traits::CodeError;
use ecfrm_gf::region::{dot_region_multi, mul_add_region};
use ecfrm_gf::{Field, Gf8, Matrix};

/// Pick a maximal set of linearly independent rows from `candidates`
/// (scanned in order), stopping once `want` rows are found. Returns `None`
/// if fewer than `want` independent rows exist.
///
/// Used by planners that need *some* invertible `k`-subset, e.g. MDS
/// repair source selection.
pub fn select_independent_rows(
    gen: &Matrix<Gf8>,
    candidates: &[usize],
    want: usize,
) -> Option<Vec<usize>> {
    let mut basis: Vec<Vec<u32>> = Vec::with_capacity(want);
    let mut picked = Vec::with_capacity(want);
    for &c in candidates {
        let mut row: Vec<u32> = gen.row(c).to_vec();
        reduce_against(&mut row, &basis);
        if row.iter().any(|&x| x != 0) {
            normalize(&mut row);
            basis.push(row);
            picked.push(c);
            if picked.len() == want {
                return Some(picked);
            }
        }
    }
    None
}

/// Reduce `row` against an echelon `basis` (each basis row normalised so
/// its leading coefficient is 1).
fn reduce_against(row: &mut [u32], basis: &[Vec<u32>]) {
    let k = row.len();
    for b in basis {
        let lead = b.iter().position(|&x| x != 0).unwrap();
        if row[lead] != 0 {
            let f = row[lead]; // b[lead] == 1 after normalisation
            for j in 0..k {
                row[j] ^= Gf8::mul(f, b[j]);
            }
        }
    }
}

/// Scale a nonzero row so its leading coefficient becomes 1.
fn normalize(row: &mut [u32]) {
    let lead = row.iter().position(|&x| x != 0).unwrap();
    let inv = Gf8::inv(row[lead]);
    for x in row.iter_mut() {
        *x = Gf8::mul(*x, inv);
    }
}

/// Solve `xᵀ · A = t` for each target row `t`, where `A` stacks the
/// generator rows listed in `avail`.
///
/// Returns, per target, `Some(coeffs)` — one coefficient per entry of
/// `avail` — or `None` when that target is outside the row space.
fn solve_combinations(
    gen: &Matrix<Gf8>,
    avail: &[usize],
    targets: &[Vec<u32>],
) -> Vec<Option<Vec<u32>>> {
    let k = gen.cols();
    let a = avail.len();
    // Build the k × (a + t) augmented system: columns are Aᵀ then targets.
    let t = targets.len();
    let mut m: Vec<Vec<u32>> = (0..k)
        .map(|r| {
            let mut row = Vec::with_capacity(a + t);
            for &ai in avail {
                row.push(gen[(ai, r)]);
            }
            for tg in targets {
                row.push(tg[r]);
            }
            row
        })
        .collect();

    // Gauss-Jordan over the first `a` columns.
    let mut pivot_of_col: Vec<Option<usize>> = vec![None; a];
    let mut rank_row = 0usize;
    for col in 0..a {
        if rank_row == k {
            break;
        }
        if let Some(p) = (rank_row..k).find(|&r| m[r][col] != 0) {
            m.swap(p, rank_row);
            let inv = Gf8::inv(m[rank_row][col]);
            for x in m[rank_row].iter_mut() {
                *x = Gf8::mul(*x, inv);
            }
            for r in 0..k {
                if r != rank_row && m[r][col] != 0 {
                    let f = m[r][col];
                    let (head, tail) = if r < rank_row {
                        let (h, t2) = m.split_at_mut(rank_row);
                        (&mut h[r], &t2[0])
                    } else {
                        let (h, t2) = m.split_at_mut(r);
                        (&mut t2[0], &h[rank_row])
                    };
                    for (x, &b) in head.iter_mut().zip(tail.iter()) {
                        *x ^= Gf8::mul(f, b);
                    }
                }
            }
            pivot_of_col[col] = Some(rank_row);
            rank_row += 1;
        }
    }

    // Rows rank_row..k are all-zero in the A-part; a target is solvable
    // iff its augmented entries there are zero too.
    targets
        .iter()
        .enumerate()
        .map(|(ti, _)| {
            let tcol = a + ti;
            if (rank_row..k).any(|r| m[r][tcol] != 0) {
                return None;
            }
            let mut x = vec![0u32; a];
            for (col, piv) in pivot_of_col.iter().enumerate() {
                if let Some(pr) = piv {
                    x[col] = m[*pr][tcol];
                }
            }
            Some(x)
        })
        .collect()
}

/// True when every element of the erasure pattern can be reconstructed.
pub fn pattern_recoverable(gen: &Matrix<Gf8>, erased: &[usize]) -> bool {
    let n = gen.rows();
    let avail: Vec<usize> = (0..n).filter(|i| !erased.contains(i)).collect();
    let targets: Vec<Vec<u32>> = erased
        .iter()
        .filter(|&&e| e < n)
        .map(|&e| gen.row(e).to_vec())
        .collect();
    solve_combinations(gen, &avail, &targets)
        .iter()
        .all(|c| c.is_some())
}

/// True when the single element `target` can be reconstructed under the
/// erasure pattern (the pattern may leave *other* elements dead).
pub fn target_recoverable(gen: &Matrix<Gf8>, target: usize, erased: &[usize]) -> bool {
    let n = gen.rows();
    let avail: Vec<usize> = (0..n)
        .filter(|i| !erased.contains(i) && *i != target)
        .collect();
    let t = vec![gen.row(target).to_vec()];
    solve_combinations(gen, &avail, &t)[0].is_some()
}

/// Reconstruct every `None` shard in place from the survivors.
///
/// `len` is the region length in bytes; surviving shards must all have
/// that length. Fails with [`CodeError::Unrecoverable`] if *any* erased
/// shard is outside the surviving row space (no partial repair — callers
/// wanting partial repair use [`target_recoverable`] +
/// [`reconstruct_one`]).
pub fn matrix_decode(
    gen: &Matrix<Gf8>,
    shards: &mut [Option<Vec<u8>>],
    len: usize,
) -> Result<(), CodeError> {
    let n = gen.rows();
    if shards.len() != n {
        return Err(CodeError::Shape(format!(
            "expected {n} shards, got {}",
            shards.len()
        )));
    }
    let erased: Vec<usize> = (0..n).filter(|&i| shards[i].is_none()).collect();
    if erased.is_empty() {
        return Ok(());
    }
    let avail: Vec<usize> = (0..n).filter(|&i| shards[i].is_some()).collect();
    for &i in &avail {
        if shards[i].as_ref().unwrap().len() != len {
            return Err(CodeError::Shape(format!(
                "shard {i} has length {} != {len}",
                shards[i].as_ref().unwrap().len()
            )));
        }
    }
    let targets: Vec<Vec<u32>> = erased.iter().map(|&e| gen.row(e).to_vec()).collect();
    let combos = solve_combinations(gen, &avail, &targets);
    if combos.iter().any(|c| c.is_none()) {
        return Err(CodeError::Unrecoverable { erased });
    }
    // All erased elements rebuild from the same survivor set, so the fused
    // multi-output kernel streams each survivor once for every target.
    let coeff_rows: Vec<Vec<u8>> = combos
        .iter()
        .map(|c| c.as_ref().unwrap().iter().map(|&x| x as u8).collect())
        .collect();
    let mut outs: Vec<Vec<u8>> = erased.iter().map(|_| vec![0u8; len]).collect();
    {
        let row_refs: Vec<&[u8]> = coeff_rows.iter().map(Vec::as_slice).collect();
        let srcs: Vec<&[u8]> = avail
            .iter()
            .map(|&i| shards[i].as_deref().unwrap())
            .collect();
        let mut out_refs: Vec<&mut [u8]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
        dot_region_multi(&row_refs, &srcs, &mut out_refs);
    }
    for (&e, out) in erased.iter().zip(outs) {
        shards[e] = Some(out);
    }
    Ok(())
}

/// Solve for the coefficient vector expressing `target` over `avail`:
/// `shard[target] = Σᵢ coeffs[i] · shard[avail[i]]`. `None` when `avail`
/// does not span the target.
pub fn solve_coefficients(gen: &Matrix<Gf8>, target: usize, avail: &[usize]) -> Option<Vec<u8>> {
    let t = vec![gen.row(target).to_vec()];
    let combo = solve_combinations(gen, avail, &t).pop().unwrap()?;
    Some(combo.into_iter().map(|c| c as u8).collect())
}

/// A valid (not necessarily minimal) source set for reconstructing
/// `target` from the elements in `avail`: the positions whose coefficient
/// in the solved combination is non-zero.
///
/// Returns `None` when `avail` does not span `target`.
pub fn solved_sources(gen: &Matrix<Gf8>, target: usize, avail: &[usize]) -> Option<Vec<usize>> {
    let t = vec![gen.row(target).to_vec()];
    let combo = solve_combinations(gen, avail, &t).pop().unwrap()?;
    Some(
        combo
            .iter()
            .zip(avail)
            .filter(|(c, _)| **c != 0)
            .map(|(_, &i)| i)
            .collect(),
    )
}

/// Reconstruct exactly one element from an explicit set of sources.
///
/// `sources` maps element index → region. Returns the rebuilt region, or
/// `None` if the sources do not span the target.
pub fn reconstruct_one(
    gen: &Matrix<Gf8>,
    target: usize,
    sources: &[(usize, &[u8])],
    len: usize,
) -> Option<Vec<u8>> {
    let avail: Vec<usize> = sources.iter().map(|(i, _)| *i).collect();
    let t = vec![gen.row(target).to_vec()];
    let combo = solve_combinations(gen, &avail, &t).pop().unwrap()?;
    let mut out = vec![0u8; len];
    for (c, (_, region)) in combo.iter().zip(sources) {
        if *c != 0 {
            assert_eq!(region.len(), len, "source region length mismatch");
            mul_add_region(*c as u8, region, &mut out);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny (3,2) systematic code: p = d0 + d1 (XOR).
    fn xor32() -> Matrix<Gf8> {
        Matrix::from_data(3, 2, vec![1, 0, 0, 1, 1, 1])
    }

    #[test]
    fn select_independent_rows_basic() {
        let g = xor32();
        assert_eq!(select_independent_rows(&g, &[0, 1, 2], 2), Some(vec![0, 1]));
        assert_eq!(select_independent_rows(&g, &[2, 1, 0], 2), Some(vec![2, 1]));
        // Row 2 = row 0 + row 1, so {0,1,2} has rank 2, not 3.
        assert_eq!(select_independent_rows(&g, &[0, 1, 2], 3), None);
    }

    #[test]
    fn pattern_recoverable_xor() {
        let g = xor32();
        assert!(pattern_recoverable(&g, &[0]));
        assert!(pattern_recoverable(&g, &[1]));
        assert!(pattern_recoverable(&g, &[2]));
        assert!(!pattern_recoverable(&g, &[0, 1]));
        assert!(!pattern_recoverable(&g, &[0, 2]));
        assert!(pattern_recoverable(&g, &[]));
    }

    #[test]
    fn decode_single_erasure_xor() {
        let g = xor32();
        let d0 = vec![1u8, 2, 3, 4];
        let d1 = vec![5u8, 6, 7, 8];
        let p: Vec<u8> = d0.iter().zip(&d1).map(|(a, b)| a ^ b).collect();
        for lost in 0..3 {
            let mut shards = vec![Some(d0.clone()), Some(d1.clone()), Some(p.clone())];
            shards[lost] = None;
            matrix_decode(&g, &mut shards, 4).unwrap();
            assert_eq!(shards[0].as_deref().unwrap(), &d0[..]);
            assert_eq!(shards[1].as_deref().unwrap(), &d1[..]);
            assert_eq!(shards[2].as_deref().unwrap(), &p[..]);
        }
    }

    #[test]
    fn decode_unrecoverable_errors() {
        let g = xor32();
        let mut shards = vec![None, None, Some(vec![0u8; 4])];
        let err = matrix_decode(&g, &mut shards, 4).unwrap_err();
        assert!(matches!(err, CodeError::Unrecoverable { .. }));
    }

    #[test]
    fn decode_rejects_bad_shapes() {
        let g = xor32();
        let mut too_few = vec![Some(vec![0u8; 4]), None];
        assert!(matches!(
            matrix_decode(&g, &mut too_few, 4),
            Err(CodeError::Shape(_))
        ));
        let mut bad_len = vec![Some(vec![0u8; 4]), Some(vec![0u8; 3]), None];
        assert!(matches!(
            matrix_decode(&g, &mut bad_len, 4),
            Err(CodeError::Shape(_))
        ));
    }

    #[test]
    fn target_recoverable_is_per_element() {
        // Code with two independent halves: d0+d1=p0, d2+d3=p1 — written
        // as a (6,4) generator. Losing d0,d1 kills that half but d2 stays
        // repairable.
        let g = Matrix::from_data(
            6,
            4,
            vec![
                1, 0, 0, 0, //
                0, 1, 0, 0, //
                0, 0, 1, 0, //
                0, 0, 0, 1, //
                1, 1, 0, 0, //
                0, 0, 1, 1, //
            ],
        );
        let erased = [0, 1, 2];
        assert!(!target_recoverable(&g, 0, &erased));
        assert!(!target_recoverable(&g, 1, &erased));
        assert!(target_recoverable(&g, 2, &erased));
        assert!(!pattern_recoverable(&g, &erased));
    }

    #[test]
    fn reconstruct_one_with_explicit_sources() {
        let g = xor32();
        let d0 = vec![9u8, 9, 9, 9];
        let d1 = vec![1u8, 2, 3, 4];
        let p: Vec<u8> = d0.iter().zip(&d1).map(|(a, b)| a ^ b).collect();
        let got = reconstruct_one(&g, 0, &[(1, &d1), (2, &p)], 4).unwrap();
        assert_eq!(got, d0);
        // d1 alone does not span d0.
        assert!(reconstruct_one(&g, 0, &[(1, &d1)], 4).is_none());
    }
}

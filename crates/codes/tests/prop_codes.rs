//! Randomised tests for the candidate codes.
//!
//! Property-style: each test sweeps a seeded pseudo-random sample of
//! parameters and erasure patterns (fixed seeds, deterministic replay).

use ecfrm_codes::decode::reconstruct_one;
use ecfrm_codes::{CandidateCode, LrcCode, RepairSpec, RsCode, WideRs, XorCode};
use ecfrm_util::Rng;

fn xorshift_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x & 0xFF) as u8
        })
        .collect()
}

fn encode_full(code: &dyn CandidateCode, seed: u64, len: usize) -> Vec<Vec<u8>> {
    let data: Vec<Vec<u8>> = (0..code.k())
        .map(|i| xorshift_bytes(seed.wrapping_add(i as u64), len))
        .collect();
    let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
    let mut parity = vec![vec![0u8; len]; code.m()];
    code.encode(&refs, &mut parity);
    data.into_iter().chain(parity).collect()
}

/// Pick `t` distinct positions in `0..n`.
fn pick_erasures(rng: &mut Rng, n: usize, t: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    order.truncate(t);
    order
}

/// RS is MDS: ANY pattern of exactly m erasures decodes, for random
/// parameters and random patterns.
#[test]
fn rs_mds_random_patterns() {
    let mut rng = Rng::seed_from_u64(0x4D5);
    for _ in 0..64 {
        let k = rng.random_range(2usize..12);
        let m = rng.random_range(1usize..6);
        let seed: u64 = rng.random();
        let code = RsCode::vandermonde(k, m);
        let len = 24;
        let full = encode_full(&code, seed, len);
        let erased = pick_erasures(&mut rng, k + m, m);
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        for &e in &erased {
            shards[e] = None;
        }
        code.decode(&mut shards, len).unwrap();
        for (i, want) in full.iter().enumerate() {
            assert_eq!(shards[i].as_deref().unwrap(), &want[..]);
        }
        // And m+1 erasures never decode.
        let erased = pick_erasures(&mut rng, k + m, m + 1);
        assert!(!code.is_recoverable(&erased));
    }
}

/// Cauchy and Vandermonde constructions encode DIFFERENT parities but
/// both decode the same data.
#[test]
fn cauchy_and_vandermonde_agree_on_data() {
    let mut rng = Rng::seed_from_u64(0xCA0C);
    for _ in 0..64 {
        let k = rng.random_range(2usize..10);
        let m = rng.random_range(1usize..5);
        let seed: u64 = rng.random();
        let v = RsCode::vandermonde(k, m);
        let c = RsCode::cauchy(k, m);
        let len = 16;
        let fv = encode_full(&v, seed, len);
        let fc = encode_full(&c, seed, len);
        // Same data prefix.
        assert_eq!(&fv[..k], &fc[..k]);
        // Erase the same data elements from both; both must restore them.
        let erased = pick_erasures(&mut rng, k, m.min(k));
        for (code, full) in [(&v, &fv), (&c, &fc)] {
            let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
            for &e in &erased {
                shards[e] = None;
            }
            code.decode(&mut shards, len).unwrap();
            for &e in &erased {
                assert_eq!(shards[e].as_deref().unwrap(), &full[e][..]);
            }
        }
    }
}

/// LRC single-element repair reads exactly the local group (k/l
/// elements) and those sources actually rebuild the element.
#[test]
fn lrc_local_repair_is_local_and_correct() {
    let mut rng = Rng::seed_from_u64(0x12C);
    for _ in 0..64 {
        let group_size = rng.random_range(2usize..5);
        let l = rng.random_range(1usize..3);
        let m = rng.random_range(1usize..4);
        let seed: u64 = rng.random();
        let k = group_size * l;
        let code = LrcCode::new(k, l, m);
        let len = 16;
        let full = encode_full(&code, seed, len);
        let target = (seed % k as u64) as usize;
        let spec = code.repair_spec(target, &[target]).unwrap();
        let RepairSpec::Exact { read } = spec else {
            panic!("LRC single repair must be Exact");
        };
        assert_eq!(read.len(), group_size, "repair reads k/l elements");
        let sources: Vec<(usize, &[u8])> = read.iter().map(|&p| (p, full[p].as_slice())).collect();
        let rebuilt = reconstruct_one(code.generator(), target, &sources, len)
            .expect("local sources span the target");
        assert_eq!(rebuilt, full[target].clone());
    }
}

/// For every code, whatever repair_spec proposes must actually suffice
/// to rebuild the target.
#[test]
fn repair_specs_are_sufficient() {
    let mut rng = Rng::seed_from_u64(0x5BEC);
    for _ in 0..192 {
        let pick = rng.random_range(0usize..3);
        let seed: u64 = rng.random();
        let fail_extra: u64 = rng.random();
        let code: Box<dyn CandidateCode> = match pick {
            0 => Box::new(RsCode::vandermonde(6, 3)),
            1 => Box::new(LrcCode::new(6, 2, 2)),
            _ => Box::new(XorCode::new(5)),
        };
        let n = code.n();
        let len = 8;
        let full = encode_full(code.as_ref(), seed, len);
        let target = (seed % n as u64) as usize;
        // One or two erasures including the target.
        let mut erased = vec![target];
        let other = (fail_extra % n as u64) as usize;
        if other != target && code.fault_tolerance() >= 2 {
            erased.push(other);
        }
        let Some(spec) = code.repair_spec(target, &erased) else {
            // Within tolerance this must exist.
            assert!(erased.len() > code.fault_tolerance());
            continue;
        };
        let read: Vec<usize> = match spec {
            RepairSpec::Exact { read } => read,
            RepairSpec::AnyOf { from, count } => from.into_iter().take(count).collect(),
        };
        for &p in &read {
            assert!(!erased.contains(&p), "source {p} is erased");
        }
        let sources: Vec<(usize, &[u8])> = read.iter().map(|&p| (p, full[p].as_slice())).collect();
        let rebuilt = reconstruct_one(code.generator(), target, &sources, len)
            .expect("spec sources must span the target");
        assert_eq!(rebuilt, full[target].clone());
    }
}

/// WideRs (GF(2^16)) roundtrips for random parameters including wide
/// ones, with random erasures up to m.
#[test]
fn wide_rs_roundtrip() {
    let mut rng = Rng::seed_from_u64(0x31DE);
    for _ in 0..32 {
        let k = rng.random_range(2usize..40);
        let m = rng.random_range(1usize..8);
        let seed: u64 = rng.random();
        let code = WideRs::new(k, m);
        let len = 16;
        let data: Vec<Vec<u8>> = (0..k)
            .map(|i| xorshift_bytes(seed.wrapping_add(i as u64), len))
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let mut parity = vec![vec![0u8; len]; m];
        code.encode(&refs, &mut parity);
        let full: Vec<Vec<u8>> = data.into_iter().chain(parity).collect();
        let erased = pick_erasures(&mut rng, k + m, m);
        let mut shards: Vec<Option<Vec<u8>>> = full.iter().cloned().map(Some).collect();
        for &e in &erased {
            shards[e] = None;
        }
        code.decode(&mut shards, len).unwrap();
        for (i, want) in full.iter().enumerate() {
            assert_eq!(shards[i].as_deref().unwrap(), &want[..]);
        }
    }
}

/// Encoding is deterministic and repeatable for every code.
#[test]
fn encoding_deterministic() {
    let mut rng = Rng::seed_from_u64(0xDE7);
    for pick in 0usize..3 {
        for _ in 0..8 {
            let seed: u64 = rng.random();
            let code: Box<dyn CandidateCode> = match pick {
                0 => Box::new(RsCode::cauchy(5, 2)),
                1 => Box::new(LrcCode::new(4, 2, 1)),
                _ => Box::new(XorCode::new(3)),
            };
            let a = encode_full(code.as_ref(), seed, 12);
            let b = encode_full(code.as_ref(), seed, 12);
            assert_eq!(a, b);
        }
    }
}

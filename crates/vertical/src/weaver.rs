//! WEAVER codes (Hafner, FAST 2005) — the paper's example of a vertical
//! code that works for **any** number of disks but "always provides no
//! more than 50% storage usage ratio" (§II-B).
//!
//! This is WEAVER(n, k=2, t=2): each disk holds one data element and one
//! parity element; the parity on disk `i` is the XOR of the data on the
//! next two disks around the ring:
//!
//! ```text
//! P_i = D_{(i+1) mod n} ⊕ D_{(i+2) mod n}
//! ```
//!
//! Fault tolerance 2, storage efficiency exactly 1/2, any `n ≥ 3`.

use ecfrm_gf::Matrix;

use crate::array_code::ArrayCode;

/// Constructor for WEAVER(n, 2, 2) instances.
pub struct Weaver;

impl Weaver {
    /// Build WEAVER(n, 2, 2) over `n` disks.
    ///
    /// # Panics
    /// Panics unless `n ≥ 4` (with 3 disks the two failure patterns
    /// collapse and tolerance drops below 2).
    #[allow(clippy::new_ret_no_self)] // factory: WEAVER instances ARE ArrayCodes
    pub fn new(n: usize) -> ArrayCode {
        assert!(n >= 4, "WEAVER(n,2,2) requires n >= 4");
        // Grid: row 0 data, row 1 parity; cell (r, c) = r*n + c.
        let mut generator = Matrix::<ecfrm_gf::Gf8>::zero(2 * n, n);
        for i in 0..n {
            generator[(i, i)] = 1; // D_i
            generator[(n + i, (i + 1) % n)] ^= 1;
            generator[(n + i, (i + 2) % n)] ^= 1;
        }
        let data_cells: Vec<(usize, usize)> = (0..n).map(|i| (0, i)).collect();
        ArrayCode::new(format!("WEAVER({n},2,2)"), n, 2, data_cells, generator, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerates_any_two_columns_for_many_n() {
        for n in 4..=12 {
            let code = Weaver::new(n);
            assert!(code.verify_column_tolerance(2), "WEAVER({n}) tolerance 2");
        }
    }

    #[test]
    fn does_not_tolerate_three_columns() {
        let code = Weaver::new(8);
        assert!(!code.verify_column_tolerance(3));
    }

    #[test]
    fn applies_to_arbitrary_n_unlike_xcode() {
        // 6 is composite: X-Code cannot exist, WEAVER can — the paper's
        // "arbitrary number of disks" axis.
        assert!(!crate::is_prime(6));
        let code = Weaver::new(6);
        assert!(code.verify_column_tolerance(2));
    }

    #[test]
    fn storage_efficiency_is_half() {
        for n in [4usize, 7, 10] {
            let code = Weaver::new(n);
            assert!((code.storage_efficiency() - 0.5).abs() < 1e-12, "n={n}");
        }
    }

    #[test]
    fn roundtrip_with_double_column_loss() {
        let n = 7;
        let code = Weaver::new(n);
        let len = 8;
        let data: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 23 + j * 7 + 1) % 256) as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let grid = code.encode(&refs);
        for a in 0..n {
            for b in a + 1..n {
                let mut cells: Vec<Option<Vec<u8>>> = grid.iter().cloned().map(Some).collect();
                for (cell, slot) in cells.iter_mut().enumerate() {
                    if cell % n == a || cell % n == b {
                        *slot = None;
                    }
                }
                code.decode(&mut cells, len).unwrap();
                for (cell, want) in grid.iter().enumerate() {
                    assert_eq!(cells[cell].as_deref().unwrap(), &want[..], "cols {a},{b}");
                }
            }
        }
    }

    #[test]
    fn parity_definition() {
        let n = 5;
        let code = Weaver::new(n);
        let len = 4;
        let data: Vec<Vec<u8>> = (0..n).map(|i| vec![1u8 << i; len]).collect();
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let grid = code.encode(&refs);
        // P_0 = D_1 ⊕ D_2 = 0b10 ^ 0b100 = 6.
        assert_eq!(grid[n], vec![6u8; len]);
    }

    #[test]
    #[should_panic]
    fn n3_rejected() {
        Weaver::new(3);
    }
}

//! X-Code (Xu & Bruck, IEEE IT 1999): an MDS vertical code on `p` disks,
//! `p` prime.
//!
//! The stripe is a `p × p` grid: rows `0..p−2` hold data; row `p−2`
//! holds parities along slope-1 diagonals and row `p−1` along slope-(−1)
//! anti-diagonals:
//!
//! ```text
//! c[p−2][i] = Σ_{k=0}^{p−3} c[k][(i + k + 2) mod p]
//! c[p−1][i] = Σ_{k=0}^{p−3} c[k][(i − k − 2) mod p]
//! ```
//!
//! Tolerance is exactly 2 column failures, and the construction only
//! exists for prime `p` — precisely the restrictions (§II-B) that keep
//! vertical codes out of production cloud stores despite their good
//! normal-read balance.

use ecfrm_gf::Matrix;

use crate::array_code::ArrayCode;
use crate::is_prime;

/// Constructor for X-Code instances.
pub struct XCode;

impl XCode {
    /// Build X-Code over `p` disks.
    ///
    /// # Panics
    /// Panics unless `p` is prime and `p ≥ 3` (the construction's
    /// requirement — the "cannot apply to arbitrary number of disks"
    /// restriction).
    #[allow(clippy::new_ret_no_self)] // factory: X-Code instances ARE ArrayCodes
    pub fn new(p: usize) -> ArrayCode {
        assert!(p >= 3 && is_prime(p), "X-Code requires a prime p >= 3");
        let data_rows = p - 2;
        let data_count = data_rows * p;
        // Data index for cell (k, j), k < p-2: k*p + j.
        let mut generator = Matrix::<ecfrm_gf::Gf8>::zero(p * p, data_count);
        // Systematic data cells.
        for k in 0..data_rows {
            for j in 0..p {
                generator[(k * p + j, k * p + j)] = 1;
            }
        }
        // Diagonal parity row p-2.
        for i in 0..p {
            for k in 0..data_rows {
                let j = (i + k + 2) % p;
                let cell = (p - 2) * p + i;
                generator[(cell, k * p + j)] ^= 1;
            }
        }
        // Anti-diagonal parity row p-1.
        for i in 0..p {
            for k in 0..data_rows {
                let j = (i + p - ((k + 2) % p)) % p;
                let cell = (p - 1) * p + i;
                generator[(cell, k * p + j)] ^= 1;
            }
        }
        let data_cells: Vec<(usize, usize)> = (0..data_rows)
            .flat_map(|k| (0..p).map(move |j| (k, j)))
            .collect();
        ArrayCode::new(format!("X-Code({p})"), p, p, data_cells, generator, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerates_any_two_columns_exhaustive() {
        for p in [3usize, 5, 7] {
            let code = XCode::new(p);
            assert!(code.verify_column_tolerance(2), "X-Code({p}) must be MDS-2");
            assert!(
                !code.verify_column_tolerance(3),
                "X-Code({p}) must NOT tolerate any 3 columns"
            );
        }
    }

    #[test]
    fn roundtrip_with_double_column_loss() {
        let p = 5;
        let code = XCode::new(p);
        let len = 16;
        let data: Vec<Vec<u8>> = (0..code.data_count())
            .map(|i| {
                (0..len)
                    .map(|j| ((i * 17 + j * 5 + 3) % 256) as u8)
                    .collect()
            })
            .collect();
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let grid = code.encode(&refs);
        for (a, b) in [(0usize, 1usize), (0, 4), (2, 3)] {
            let mut cells: Vec<Option<Vec<u8>>> = grid.iter().cloned().map(Some).collect();
            for (cell, slot) in cells.iter_mut().enumerate() {
                if cell % p == a || cell % p == b {
                    *slot = None;
                }
            }
            code.decode(&mut cells, len).unwrap();
            for (cell, want) in grid.iter().enumerate() {
                assert_eq!(cells[cell].as_deref().unwrap(), &want[..], "cols {a},{b}");
            }
        }
    }

    #[test]
    fn parity_equations_match_definition() {
        // Spot-check p = 5, parity cell (3, 0): contributions from
        // (k, (0+k+2) mod 5), k = 0..2 → (0,2), (1,3), (2,4).
        let code = XCode::new(5);
        let len = 4;
        let mut data = vec![vec![0u8; len]; code.data_count()];
        // Set d(0,2)=1, d(1,3)=2, d(2,4)=4; expect parity = 7.
        data[2] = vec![1; len];
        data[5 + 3] = vec![2; len];
        data[10 + 4] = vec![4; len];
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let grid = code.encode(&refs);
        assert_eq!(grid[3 * 5], vec![7u8; len]);
    }

    #[test]
    fn storage_efficiency_is_p_minus_2_over_p() {
        let code = XCode::new(7);
        assert!((code.storage_efficiency() - 5.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn normal_reads_balance_like_ecfrm() {
        // The vertical selling point: any c ≤ p consecutive elements hit
        // c distinct disks.
        let code = XCode::new(7);
        for start in 0..35u64 {
            let load = code.normal_read_load(start, 7);
            assert_eq!(*load.iter().max().unwrap(), 1, "start {start}");
        }
    }

    #[test]
    #[should_panic]
    fn composite_p_rejected() {
        XCode::new(6);
    }

    #[test]
    #[should_panic]
    fn tiny_p_rejected() {
        XCode::new(2);
    }
}

//! Generic XOR array codes over a `rows × cols` grid.
//!
//! A vertical code is a binary linear code whose codeword is the whole
//! grid: every cell — data or parity — is a known XOR of the data cells,
//! i.e. a 0/1 row of a generator matrix over `GF(2)` (embedded in
//! `GF(2^8)`, so the workspace's matrix decoder applies unchanged).
//! Disks are columns; a disk failure erases one whole column.

use ecfrm_gf::region::dot_region;
use ecfrm_gf::{Gf8, Matrix};

use ecfrm_codes::decode::{matrix_decode, pattern_recoverable};
use ecfrm_codes::CodeError;

/// A concrete XOR array code instance.
#[derive(Debug, Clone)]
pub struct ArrayCode {
    name: String,
    cols: usize,
    rows: usize,
    /// `(row, col)` of each data cell, in data-index order (row-major for
    /// the codes built here, so sequential data spreads across columns).
    data_cells: Vec<(usize, usize)>,
    /// `(rows·cols) × data_count` generator; cell `(r, c)` is generator
    /// row `r·cols + c`.
    generator: Matrix<Gf8>,
    tolerance: usize,
}

impl ArrayCode {
    /// Assemble an array code from its parts. Intended for the
    /// constructors in [`crate::xcode`] / [`crate::weaver`]; exposed so
    /// downstream experiments can define further vertical codes.
    ///
    /// # Panics
    /// Panics if the generator shape is inconsistent, or a data cell's
    /// generator row is not the expected identity row.
    pub fn new(
        name: String,
        cols: usize,
        rows: usize,
        data_cells: Vec<(usize, usize)>,
        generator: Matrix<Gf8>,
        tolerance: usize,
    ) -> Self {
        assert_eq!(generator.rows(), rows * cols, "generator row count");
        assert_eq!(generator.cols(), data_cells.len(), "generator col count");
        for (i, &(r, c)) in data_cells.iter().enumerate() {
            assert!(r < rows && c < cols, "data cell out of grid");
            let row = generator.row(r * cols + c);
            assert!(
                row.iter().enumerate().all(|(j, &v)| v == u32::from(j == i)),
                "data cell ({r},{c}) must carry data index {i} systematically"
            );
        }
        Self {
            name,
            cols,
            rows,
            data_cells,
            generator,
            tolerance,
        }
    }

    /// Code name, e.g. `"X-Code(5)"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of disks (columns).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Rows per stripe.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Data cells per stripe.
    pub fn data_count(&self) -> usize {
        self.data_cells.len()
    }

    /// Guaranteed column (disk) fault tolerance.
    pub fn tolerance(&self) -> usize {
        self.tolerance
    }

    /// Data fraction of the grid (the paper's storage-efficiency axis:
    /// WEAVER never exceeds 50%).
    pub fn storage_efficiency(&self) -> f64 {
        self.data_count() as f64 / (self.rows * self.cols) as f64
    }

    /// Grid cell `(row, col)` of data index `i`.
    pub fn data_cell(&self, i: usize) -> (usize, usize) {
        self.data_cells[i]
    }

    /// The generator matrix (cell `(r, c)` ↔ row `r·cols + c`).
    pub fn generator(&self) -> &Matrix<Gf8> {
        &self.generator
    }

    /// Encode one stripe: from `data_count` regions to the full
    /// `rows × cols` grid (row-major cell order).
    ///
    /// # Panics
    /// Panics on arity or length mismatches.
    pub fn encode(&self, data: &[&[u8]]) -> Vec<Vec<u8>> {
        assert_eq!(data.len(), self.data_count(), "encode arity");
        let len = data.first().map_or(0, |d| d.len());
        assert!(data.iter().all(|d| d.len() == len), "unequal regions");
        (0..self.rows * self.cols)
            .map(|cell| {
                let coeffs: Vec<u8> = self.generator.row(cell).iter().map(|&c| c as u8).collect();
                let mut out = vec![0u8; len];
                dot_region(&coeffs, data, &mut out);
                out
            })
            .collect()
    }

    /// Reconstruct every `None` cell in place (row-major cell order).
    ///
    /// # Errors
    /// [`CodeError::Unrecoverable`] when the erasure pattern exceeds what
    /// the generator spans.
    pub fn decode(&self, cells: &mut [Option<Vec<u8>>], len: usize) -> Result<(), CodeError> {
        matrix_decode(&self.generator, cells, len)
    }

    /// True when losing exactly these columns is decodable.
    pub fn columns_recoverable(&self, failed_cols: &[usize]) -> bool {
        let erased: Vec<usize> = (0..self.rows * self.cols)
            .filter(|cell| failed_cols.contains(&(cell % self.cols)))
            .collect();
        pattern_recoverable(&self.generator, &erased)
    }

    /// Exhaustively verify that any `t` column failures decode.
    pub fn verify_column_tolerance(&self, t: usize) -> bool {
        let n = self.cols;
        if t > n {
            return false;
        }
        let mut idx: Vec<usize> = (0..t).collect();
        loop {
            if !self.columns_recoverable(&idx) {
                return false;
            }
            let mut advanced = false;
            let mut i = t;
            while i > 0 {
                i -= 1;
                if idx[i] != i + n - t {
                    idx[i] += 1;
                    for j in i + 1..t {
                        idx[j] = idx[j - 1] + 1;
                    }
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return true;
            }
        }
    }

    /// Per-disk load of a normal read of data elements
    /// `start..start+count` (data laid stripe after stripe in data-index
    /// order). Vertical codes' selling point: this is as balanced as
    /// EC-FRM's.
    pub fn normal_read_load(&self, start: u64, count: usize) -> Vec<usize> {
        let mut load = vec![0usize; self.cols];
        let d = self.data_count() as u64;
        for i in 0..count as u64 {
            let idx = start + i;
            let (_, col) = self.data_cells[(idx % d) as usize];
            load[col] += 1;
        }
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy 2×2 vertical code: d0, d1 in row 0; parities d1, d0 in
    /// row 1 swapped across columns (mirrored copies — tolerance 1).
    fn mirror2() -> ArrayCode {
        let generator = Matrix::from_data(
            4,
            2,
            vec![
                1, 0, // (0,0) = d0
                0, 1, // (0,1) = d1
                0, 1, // (1,0) = copy of d1
                1, 0, // (1,1) = copy of d0
            ],
        );
        ArrayCode::new("Mirror(2)".into(), 2, 2, vec![(0, 0), (0, 1)], generator, 1)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let code = mirror2();
        let d0 = vec![1u8, 2, 3];
        let d1 = vec![9u8, 8, 7];
        let grid = code.encode(&[&d0, &d1]);
        assert_eq!(grid[0], d0);
        assert_eq!(grid[1], d1);
        assert_eq!(grid[2], d1);
        assert_eq!(grid[3], d0);
        // Lose column 0 (cells 0 and 2).
        let mut cells: Vec<Option<Vec<u8>>> = grid.iter().cloned().map(Some).collect();
        cells[0] = None;
        cells[2] = None;
        code.decode(&mut cells, 3).unwrap();
        assert_eq!(cells[0].as_deref().unwrap(), &d0[..]);
    }

    #[test]
    fn column_tolerance_checks() {
        let code = mirror2();
        assert!(code.verify_column_tolerance(1));
        assert!(!code.verify_column_tolerance(2));
        assert!(code.columns_recoverable(&[1]));
        assert!(!code.columns_recoverable(&[0, 1]));
    }

    #[test]
    fn efficiency_and_accessors() {
        let code = mirror2();
        assert_eq!(code.storage_efficiency(), 0.5);
        assert_eq!(code.cols(), 2);
        assert_eq!(code.rows(), 2);
        assert_eq!(code.data_count(), 2);
        assert_eq!(code.tolerance(), 1);
        assert_eq!(code.data_cell(1), (0, 1));
        assert_eq!(code.name(), "Mirror(2)");
    }

    #[test]
    fn normal_read_load_spreads() {
        let code = mirror2();
        let load = code.normal_read_load(0, 4);
        assert_eq!(load, vec![2, 2]);
    }

    #[test]
    #[should_panic]
    fn non_systematic_data_cell_rejected() {
        let generator = Matrix::from_data(2, 1, vec![0, 1]); // (0,0) not d0
        ArrayCode::new("bad".into(), 1, 2, vec![(0, 0)], generator, 0);
    }
}

//! Vertical erasure codes: X-Code and WEAVER.
//!
//! The paper's motivation (§II-B, §III-A) is that vertical codes —
//! parities distributed among all disks — get normal reads right (every
//! disk holds data) but "cannot achieve both high fault tolerance and
//! low storage overheads simultaneously, … and usually cannot apply to
//! arbitrary number of disks". This crate implements the two vertical
//! codes the paper names so that claim is checkable, and so the
//! benchmark harness can put them next to EC-FRM:
//!
//! * [`XCode`] — Xu & Bruck's MDS array code: `p` disks (`p` prime!),
//!   `p − 2` data rows, two diagonal-parity rows, tolerance exactly 2;
//! * [`Weaver`] — Hafner's WEAVER(n, 2, 2): tolerance 2 at 50% storage
//!   efficiency, any `n`.
//!
//! Both are expressed through [`ArrayCode`], a generic XOR array code
//! over a `rows × cols` grid with a binary generator matrix, which
//! reuses the workspace's matrix decoder — the same machinery that
//! decodes RS and LRC.

pub mod array_code;
pub mod weaver;
pub mod xcode;

pub use array_code::ArrayCode;
pub use weaver::Weaver;
pub use xcode::XCode;

/// Primality by trial division (array-code parameters are tiny).
pub fn is_prime(n: usize) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::is_prime;

    #[test]
    fn primality() {
        let primes: Vec<usize> = (0..30).filter(|&n| is_prime(n)).collect();
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
    }
}

//! Plan quality: the degraded-read planner's greedy source selection vs
//! the exhaustive optimum.
//!
//! The planner picks repair sources greedily (already-fetched first, then
//! least-loaded disks). This test enumerates *every* valid source
//! combination for small scenarios and checks the greedy bottleneck is
//! optimal or at most one element above it — i.e. the greedy heuristic
//! does not silently squander EC-FRM's layout advantage.

use std::collections::HashSet;
use std::sync::Arc;

use ecfrm_codes::{CandidateCode, RepairSpec, RsCode};
use ecfrm_core::{LayoutKind, Scheme};
use ecfrm_layout::Loc;

/// All c-subsets of `from`.
fn subsets(from: &[usize], c: usize) -> Vec<Vec<usize>> {
    if c > from.len() {
        return vec![];
    }
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..c).collect();
    loop {
        out.push(idx.iter().map(|&i| from[i]).collect());
        let n = from.len();
        let mut i = c;
        let mut advanced = false;
        while i > 0 {
            i -= 1;
            if idx[i] != i + n - c {
                idx[i] += 1;
                for j in i + 1..c {
                    idx[j] = idx[j - 1] + 1;
                }
                advanced = true;
                break;
            }
        }
        if !advanced {
            return out;
        }
    }
}

/// Exhaustive minimum achievable max-load for a degraded read.
fn brute_force_best(scheme: &Scheme, start: u64, count: usize, failed: usize) -> usize {
    let layout = scheme.layout();
    let code = scheme.code();
    let mut demand: HashSet<Loc> = HashSet::new();
    let mut lost: Vec<(u64, usize, usize)> = Vec::new();
    for i in 0..count as u64 {
        let idx = start + i;
        let loc = layout.data_location(idx);
        let (stripe, row, pos) = layout.data_coordinates(idx);
        if loc.disk == failed {
            lost.push((stripe, row, pos));
        } else {
            demand.insert(loc);
        }
    }
    // Per lost element: the list of acceptable source-loc sets.
    let mut options: Vec<Vec<Vec<Loc>>> = Vec::new();
    for &(stripe, row, pos) in &lost {
        let locs = layout.row_locations(stripe, row);
        let erased: Vec<usize> = (0..locs.len())
            .filter(|&p| locs[p].disk == failed)
            .collect();
        let spec = code.repair_spec(pos, &erased).expect("repairable");
        let sets: Vec<Vec<Loc>> = match spec {
            RepairSpec::Exact { read } => {
                vec![read.into_iter().map(|p| locs[p]).collect()]
            }
            RepairSpec::AnyOf { from, count } => subsets(&from, count)
                .into_iter()
                .map(|s| s.into_iter().map(|p| locs[p]).collect())
                .collect(),
        };
        options.push(sets);
    }
    // Cartesian product search.
    fn recurse(
        options: &[Vec<Vec<Loc>>],
        acc: &mut HashSet<Loc>,
        n_disks: usize,
        best: &mut usize,
    ) {
        if options.is_empty() {
            let mut load = vec![0usize; n_disks];
            for l in acc.iter() {
                load[l.disk] += 1;
            }
            *best = (*best).min(load.into_iter().max().unwrap_or(0));
            return;
        }
        for set in &options[0] {
            let added: Vec<Loc> = set.iter().filter(|l| !acc.contains(l)).copied().collect();
            for &l in &added {
                acc.insert(l);
            }
            recurse(&options[1..], acc, n_disks, best);
            for l in &added {
                acc.remove(l);
            }
        }
    }
    let mut best = usize::MAX;
    let mut acc = demand;
    recurse(&options, &mut acc, scheme.n_disks(), &mut best);
    best
}

#[test]
fn greedy_is_near_optimal_rs42() {
    let code: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(4, 2));
    for kind in [LayoutKind::Standard, LayoutKind::Rotated, LayoutKind::EcFrm] {
        let scheme = Scheme::builder(code.clone()).layout(kind).build();
        let mut exact = 0usize;
        let mut total = 0usize;
        for start in 0..12u64 {
            for count in 1..=8usize {
                for failed in 0..scheme.n_disks() {
                    let plan = scheme.degraded_read_plan(start, count, &[failed]);
                    assert!(plan.unreadable.is_empty());
                    let greedy = plan.max_load();
                    let best = brute_force_best(&scheme, start, count, failed);
                    assert!(
                        greedy <= best + 1,
                        "{}: start={start} count={count} failed={failed}: greedy {greedy} \
                         vs optimal {best}",
                        scheme.name()
                    );
                    if greedy == best {
                        exact += 1;
                    }
                    total += 1;
                }
            }
        }
        // The greedy should hit the exact optimum almost always.
        assert!(
            exact * 10 >= total * 9,
            "{}: greedy optimal in only {exact}/{total} scenarios",
            scheme.name()
        );
    }
}

#[test]
fn greedy_never_fetches_more_than_needed() {
    // Total fetches = demand + k per lost element, minus overlaps —
    // never more.
    let code: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(4, 2));
    let scheme = Scheme::builder(code).layout(LayoutKind::EcFrm).build();
    for start in 0..10u64 {
        for failed in 0..6 {
            let count = 8;
            let plan = scheme.degraded_read_plan(start, count, &[failed]);
            let lost = count
                - plan
                    .fetches
                    .iter()
                    .filter(|f| f.purpose == ecfrm_core::Purpose::Demand)
                    .count();
            assert!(
                plan.total_fetched() <= (count - lost) + lost * 4,
                "start={start} failed={failed}: fetched {} for {} lost",
                plan.total_fetched(),
                lost
            );
        }
    }
}

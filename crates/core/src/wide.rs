//! [`WideScheme`]: the EC-FRM framework at `GF(2^16)` width — stripes of
//! hundreds to thousands of devices.
//!
//! [`Scheme`](crate::Scheme) is byte-symbol (`GF(2^8)`) like the paper's
//! Jerasure setup, capping `n` at 255. `WideScheme` pairs the
//! 16-bit-symbol [`WideRs`] with the same (code-agnostic) layouts and
//! provides the same planning/encoding/assembly surface, so the
//! construction demonstrably scales to datacenter-wide stripes. Only
//! MDS (RS) candidate behaviour is supported at this width — which is
//! the code family actually deployed at such scales.

use std::collections::HashMap;
use std::sync::Arc;

use ecfrm_codes::{CodeError, WideRs};
use ecfrm_layout::{EcFrmLayout, Layout, Loc, RotatedLayout, StandardLayout};

use crate::plan::{Fetch, Purpose, ReadPlan};
use crate::stripe::StripeImage;

/// A wide-symbol scheme: [`WideRs`] + a layout.
#[derive(Clone)]
pub struct WideScheme {
    code: Arc<WideRs>,
    layout: Arc<dyn Layout>,
}

impl std::fmt::Debug for WideScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WideScheme({})", self.name())
    }
}

impl WideScheme {
    /// Bind a wide code to an arbitrary layout.
    ///
    /// # Panics
    /// Panics if the layout's `(n, k)` disagrees with the code's.
    pub fn new(code: Arc<WideRs>, layout: Arc<dyn Layout>) -> Self {
        assert_eq!(layout.code_n(), code.n(), "layout n != code n");
        assert_eq!(layout.code_k(), code.k(), "layout k != code k");
        Self { code, layout }
    }

    /// Standard horizontal form.
    pub fn standard(code: Arc<WideRs>) -> Self {
        let l = StandardLayout::new(code.n(), code.k());
        Self::new(code, Arc::new(l))
    }

    /// Rotated form.
    pub fn rotated(code: Arc<WideRs>) -> Self {
        let l = RotatedLayout::new(code.n(), code.k());
        Self::new(code, Arc::new(l))
    }

    /// EC-FRM form.
    pub fn ecfrm(code: Arc<WideRs>) -> Self {
        let l = EcFrmLayout::new(code.n(), code.k());
        Self::new(code, Arc::new(l))
    }

    /// Display name, e.g. `EC-FRM-WRS(240,60)`.
    pub fn name(&self) -> String {
        let base = format!("WRS({},{})", self.code.k(), self.code.m());
        match self.layout.name() {
            "standard" => base,
            "rotated" => format!("R-{base}"),
            "ecfrm" => format!("EC-FRM-{base}"),
            other => format!("{}-{base}", other.to_uppercase()),
        }
    }

    /// Number of disks.
    pub fn n_disks(&self) -> usize {
        self.layout.n_disks()
    }

    /// The layout.
    pub fn layout(&self) -> &dyn Layout {
        self.layout.as_ref()
    }

    /// The wide code.
    pub fn code(&self) -> &WideRs {
        &self.code
    }

    /// Data elements per layout stripe.
    pub fn data_per_stripe(&self) -> usize {
        self.layout.data_per_stripe()
    }

    /// Encode one stripe (regions must be even-length: 2-byte symbols).
    ///
    /// # Panics
    /// Panics on arity/length mismatches.
    pub fn encode_stripe(&self, stripe: u64, data: &[&[u8]]) -> StripeImage {
        let dps = self.data_per_stripe();
        assert_eq!(data.len(), dps, "expected {dps} data elements per stripe");
        let element_size = data.first().map_or(0, |d| d.len());
        let k = self.code.k();
        let pcount = self.code.m();
        let mut img = StripeImage::empty(self.layout.as_ref(), stripe, element_size);
        for g in 0..self.layout.rows_per_stripe() {
            let group = &data[g * k..(g + 1) * k];
            let mut parity = vec![vec![0u8; element_size]; pcount];
            self.code.encode(group, &mut parity);
            let base = stripe * dps as u64 + (g * k) as u64;
            for (t, d) in group.iter().enumerate() {
                img.put(self.layout.data_location(base + t as u64), d.to_vec());
            }
            for (p, bytes) in parity.into_iter().enumerate() {
                img.put(self.layout.parity_location(stripe, g, p), bytes);
            }
        }
        img
    }

    /// Plan a normal read (identical mechanics to [`crate::Scheme`]).
    pub fn normal_read_plan(&self, start: u64, count: usize) -> ReadPlan {
        let mut plan = ReadPlan::new(self.n_disks(), count);
        for i in 0..count as u64 {
            let idx = start + i;
            let (stripe, row, pos) = self.layout.data_coordinates(idx);
            plan.fetches.push(Fetch {
                loc: self.layout.data_location(idx),
                stripe,
                row,
                pos,
                purpose: Purpose::Demand,
            });
        }
        plan
    }

    /// Plan a degraded read. MDS repair: any `k` surviving elements of
    /// the group, chosen greedily (already-fetched first, then
    /// least-loaded disks).
    pub fn degraded_read_plan(&self, start: u64, count: usize, failed: &[usize]) -> ReadPlan {
        let k = self.code.k();
        let m = self.code.m();
        let mut plan = ReadPlan::new(self.n_disks(), count);
        let is_failed = |d: usize| failed.contains(&d);
        let mut loads = vec![0usize; self.n_disks()];
        let mut lost = Vec::new();
        for i in 0..count as u64 {
            let idx = start + i;
            let loc = self.layout.data_location(idx);
            let (stripe, row, pos) = self.layout.data_coordinates(idx);
            if is_failed(loc.disk) {
                lost.push((idx, stripe, row, pos));
            } else {
                plan.fetches.push(Fetch {
                    loc,
                    stripe,
                    row,
                    pos,
                    purpose: Purpose::Demand,
                });
                loads[loc.disk] += 1;
            }
        }
        for (idx, stripe, row, _pos) in lost {
            let row_locs = self.layout.row_locations(stripe, row);
            let erased = row_locs.iter().filter(|l| is_failed(l.disk)).count();
            if erased > m {
                plan.unreadable.push(idx);
                continue;
            }
            let (have, candidates): (Vec<usize>, Vec<usize>) = (0..row_locs.len())
                .filter(|&p| !is_failed(row_locs[p].disk))
                .partition(|&p| plan.contains(row_locs[p]));
            let mut chosen: Vec<usize> = have.into_iter().take(k).collect();
            if chosen.len() < k {
                let mut ranked: Vec<(usize, usize, usize)> = candidates
                    .into_iter()
                    .map(|p| (loads[row_locs[p].disk], row_locs[p].disk, p))
                    .collect();
                ranked.sort_unstable();
                for (_, _, p) in ranked.into_iter().take(k - chosen.len()) {
                    chosen.push(p);
                }
            }
            for p in chosen {
                let loc = row_locs[p];
                if !plan.contains(loc) {
                    plan.fetches.push(Fetch {
                        loc,
                        stripe,
                        row,
                        pos: p,
                        purpose: Purpose::Repair,
                    });
                    loads[loc.disk] += 1;
                }
            }
        }
        plan
    }

    /// Materialise requested data from fetched bytes, reconstructing
    /// elements that were not fetched directly.
    pub fn assemble_read(
        &self,
        start: u64,
        count: usize,
        fetched: &HashMap<Loc, Vec<u8>>,
    ) -> Result<Vec<Vec<u8>>, CodeError> {
        let element_size = match fetched.values().next() {
            Some(v) => v.len(),
            None if count == 0 => return Ok(Vec::new()),
            None => return Err(CodeError::Shape("no fetched data to assemble".into())),
        };
        let mut out = Vec::with_capacity(count);
        for i in 0..count as u64 {
            let idx = start + i;
            let loc = self.layout.data_location(idx);
            if let Some(bytes) = fetched.get(&loc) {
                out.push(bytes.clone());
                continue;
            }
            let (stripe, row, pos) = self.layout.data_coordinates(idx);
            let row_locs = self.layout.row_locations(stripe, row);
            let sources: Vec<(usize, &[u8])> = row_locs
                .iter()
                .enumerate()
                .filter(|(p, _)| *p != pos)
                .filter_map(|(p, l)| fetched.get(l).map(|b| (p, b.as_slice())))
                .collect();
            let rebuilt = self
                .code
                .reconstruct_one(pos, &sources, element_size)
                .ok_or(CodeError::Unrecoverable { erased: vec![pos] })?;
            out.push(rebuilt);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(count: usize, size: usize) -> Vec<Vec<u8>> {
        (0..count)
            .map(|i| {
                (0..size)
                    .map(|j| ((i * 73 + j * 11 + 9) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    /// A 300-disk wide scheme exercised end to end in memory.
    #[test]
    fn wide_ecfrm_roundtrip_300_disks() {
        let code = Arc::new(WideRs::new(240, 60));
        let scheme = WideScheme::ecfrm(code);
        assert_eq!(scheme.name(), "EC-FRM-WRS(240,60)");
        assert_eq!(scheme.n_disks(), 300);
        let dps = scheme.data_per_stripe();
        let data = sample(dps, 8);
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let img = scheme.encode_stripe(0, &refs);
        assert!(img.is_complete());
        let all: HashMap<Loc, Vec<u8>> = img.iter().map(|(l, b)| (l, b.to_vec())).collect();

        // Normal read across the stripe.
        let got = scheme.assemble_read(0, dps, &all).unwrap();
        assert_eq!(got, data);

        // Degraded read with several failed disks.
        let failed = [0usize, 57, 123, 299];
        let plan = scheme.degraded_read_plan(100, 400, &failed);
        assert!(plan.unreadable.is_empty());
        for f in &plan.fetches {
            assert!(!failed.contains(&f.loc.disk));
        }
        let fetched: HashMap<Loc, Vec<u8>> = plan
            .fetches
            .iter()
            .map(|f| (f.loc, all[&f.loc].clone()))
            .collect();
        let got = scheme.assemble_read(100, 400, &fetched).unwrap();
        for (i, g) in got.iter().enumerate() {
            assert_eq!(g, &data[100 + i], "element {}", 100 + i);
        }
    }

    #[test]
    fn wide_normal_reads_balance() {
        let code = Arc::new(WideRs::new(240, 60));
        let std = WideScheme::standard(code.clone());
        let ec = WideScheme::ecfrm(code);
        // 300 consecutive elements: standard loads some disk twice
        // (240 data disks), EC-FRM never.
        assert!(std.normal_read_plan(0, 300).max_load() >= 2);
        assert_eq!(ec.normal_read_plan(0, 300).max_load(), 1);
    }

    #[test]
    fn wide_unreadable_beyond_m() {
        let code = Arc::new(WideRs::new(4, 2));
        let scheme = WideScheme::standard(code);
        let plan = scheme.degraded_read_plan(0, 4, &[0, 1, 2]);
        assert!(!plan.unreadable.is_empty());
    }

    #[test]
    fn rotated_wide_form_works_too() {
        let code = Arc::new(WideRs::new(6, 3));
        let scheme = WideScheme::rotated(code);
        assert_eq!(scheme.name(), "R-WRS(6,3)");
        let dps = scheme.data_per_stripe();
        let data = sample(dps * 2, 6);
        let mut all = HashMap::new();
        for s in 0..2u64 {
            let refs: Vec<&[u8]> = data[s as usize * dps..(s as usize + 1) * dps]
                .iter()
                .map(|v| v.as_slice())
                .collect();
            for (l, b) in scheme.encode_stripe(s, &refs).iter() {
                all.insert(l, b.to_vec());
            }
        }
        for failed in 0..scheme.n_disks() {
            let plan = scheme.degraded_read_plan(1, dps, &[failed]);
            let fetched: HashMap<Loc, Vec<u8>> = plan
                .fetches
                .iter()
                .map(|f| (f.loc, all[&f.loc].clone()))
                .collect();
            let got = scheme.assemble_read(1, dps, &fetched).unwrap();
            for (i, g) in got.iter().enumerate() {
                assert_eq!(g, &data[1 + i], "failed={failed}");
            }
        }
    }
}

//! The EC-FRM framework (paper §IV): candidate code + layout = scheme.
//!
//! A [`Scheme`] binds a [`CandidateCode`](ecfrm_codes::CandidateCode)
//! (Reed–Solomon, LRC, …) to a [`Layout`](ecfrm_layout::Layout)
//! (standard, rotated, EC-FRM, …) and provides everything a storage
//! system needs:
//!
//! * **stripe construction** ([`Scheme::encode_stripe`]) — paper §IV-B
//!   Step 2: each layout group is logically one candidate-code row, so
//!   parities are computed group by group with the candidate's own rules;
//! * **read planning** ([`Scheme::normal_read_plan`],
//!   [`Scheme::degraded_read_plan`]) — maps requested data elements to
//!   per-disk accesses and, under failures, adds minimal repair traffic,
//!   greedily balancing the most-loaded disk (the paper's bottleneck
//!   metric, §III-B);
//! * **reconstruction** ([`Scheme::assemble_read`],
//!   [`recover::DiskRecovery`]) — paper §IV-D: identify failed elements
//!   at stripe level, solve the candidate code's equations per group;
//! * **fault-tolerance checking** ([`Scheme::verify_disk_tolerance`]) —
//!   machine-checkable form of paper §IV-C (Lemma 1): EC-FRM preserves
//!   the candidate code's tolerance.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use ecfrm_codes::LrcCode;
//! use ecfrm_core::Scheme;
//!
//! // (6,2,2) EC-FRM-LRC — the paper's running example.
//! let scheme = Scheme::builder(Arc::new(LrcCode::new(6, 2, 2)))
//!     .layout(ecfrm_core::LayoutKind::EcFrm)
//!     .build();
//! let plan = scheme.normal_read_plan(0, 8);
//! // Figure 7(a): the most loaded disk serves exactly one element.
//! assert_eq!(plan.max_load(), 1);
//! ```

#![warn(missing_docs)]

pub mod plan;
pub mod recover;
pub mod scheme;
pub mod stripe;
pub mod update;
pub mod wide;

pub use ecfrm_layout::{DomainMap, LayoutKind};
pub use plan::{Fetch, Purpose, ReadPlan};
pub use recover::DiskRecovery;
pub use scheme::{ReadCtx, Scheme, SchemeBuilder};
pub use stripe::StripeImage;
pub use update::{append_stripe_plan, update_plan, WritePlan};
pub use wide::WideScheme;

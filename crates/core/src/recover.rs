//! Whole-disk recovery (paper §IV-D): rebuild every element of a failed
//! disk, group by group.
//!
//! Recovery follows the paper's three steps: identify failed elements at
//! stripe level, establish each group's decoding relationship, and solve
//! it. [`DiskRecovery`] produces the full task list plus the read-load
//! distribution the rebuild induces on the surviving disks — EC-FRM
//! spreads that load like a vertical code would, which is one of the
//! merits §V-B claims.

use std::collections::HashMap;

use ecfrm_codes::{decode, RepairSpec};
use ecfrm_layout::Loc;

use crate::scheme::Scheme;

/// Rebuild instructions for one lost element.
#[derive(Debug, Clone)]
pub struct RepairTask {
    /// Stripe containing the lost element.
    pub stripe: u64,
    /// Candidate row (group) within the stripe.
    pub row: usize,
    /// Row position of the lost element.
    pub pos: usize,
    /// Where the rebuilt element must be written.
    pub target: Loc,
    /// `(row position, location)` of each element to read.
    pub sources: Vec<(usize, Loc)>,
}

/// A complete single-disk recovery plan over a stripe range.
#[derive(Debug, Clone)]
pub struct DiskRecovery {
    /// The failed disk.
    pub failed: usize,
    /// One task per lost element.
    pub tasks: Vec<RepairTask>,
    n_disks: usize,
}

impl DiskRecovery {
    /// Plan the recovery of `failed` over stripes `0..stripes`, assuming
    /// it is the only disk down.
    ///
    /// Repair sources are chosen greedily to keep the surviving disks'
    /// cumulative read loads balanced.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use ecfrm_codes::RsCode;
    /// use ecfrm_core::{DiskRecovery, Scheme};
    ///
    /// let scheme = Scheme::builder(Arc::new(RsCode::vandermonde(6, 3)))
    ///     .layout(ecfrm_core::LayoutKind::EcFrm)
    ///     .build();
    /// let rec = DiskRecovery::plan(&scheme, 0, 4);
    /// // Every offset of the failed disk gets one rebuild task, each
    /// // reading k = 6 surviving elements.
    /// assert_eq!(rec.total_rebuilt(), 4 * 3); // 3 offsets per stripe
    /// assert_eq!(rec.total_reads(), rec.total_rebuilt() * 6);
    /// assert_eq!(rec.read_load()[0], 0);      // nothing read from disk 0
    /// ```
    ///
    /// # Panics
    /// Panics if `failed` is not a valid disk, or if some element of the
    /// failed disk is unrecoverable (single-disk failure is always within
    /// tolerance for any code with `m ≥ 1`).
    pub fn plan(scheme: &Scheme, failed: usize, stripes: u64) -> Self {
        Self::plan_among(scheme, failed, &[failed], stripes)
            .expect("single-disk failure must be repairable")
    }

    /// Plan the recovery of `target` while the disks in `all_failed`
    /// (which should include `target`) are simultaneously unavailable —
    /// the multi-failure rebuild path, where sources must avoid every
    /// downed disk.
    ///
    /// # Errors
    /// Returns a description of the first unrecoverable element if the
    /// combined failure pattern exceeds the code's tolerance.
    ///
    /// # Panics
    /// Panics if `target` is not a valid disk.
    pub fn plan_among(
        scheme: &Scheme,
        target: usize,
        all_failed: &[usize],
        stripes: u64,
    ) -> Result<Self, String> {
        let ids: Vec<u64> = (0..stripes).collect();
        Self::plan_stripes(scheme, target, all_failed, &ids)
    }

    /// Plan the recovery of `target` restricted to the given stripes —
    /// the unit of work of an incremental (background) repair pipeline,
    /// which rebuilds a lost disk stripe by stripe instead of in one
    /// blocking pass. Greedy source balancing runs over exactly the
    /// stripes given, so a one-stripe plan is self-contained.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use ecfrm_codes::RsCode;
    /// use ecfrm_core::{DiskRecovery, Scheme};
    ///
    /// let scheme = Scheme::builder(Arc::new(RsCode::vandermonde(6, 3)))
    ///     .layout(ecfrm_core::LayoutKind::EcFrm)
    ///     .build();
    /// let one = DiskRecovery::plan_stripes(&scheme, 0, &[0], &[7]).unwrap();
    /// // Exactly the failed disk's elements of stripe 7.
    /// assert_eq!(one.total_rebuilt() as u64, scheme.layout().offsets_per_stripe());
    /// assert!(one.tasks.iter().all(|t| t.stripe == 7));
    /// ```
    ///
    /// # Errors
    /// Returns a description of the first unrecoverable element if the
    /// combined failure pattern exceeds the code's tolerance.
    ///
    /// # Panics
    /// Panics if `target` is not a valid disk.
    pub fn plan_stripes(
        scheme: &Scheme,
        target: usize,
        all_failed: &[usize],
        stripe_ids: &[u64],
    ) -> Result<Self, String> {
        let layout = scheme.layout();
        let code = scheme.code();
        assert!(target < layout.n_disks(), "failed disk out of range");
        let is_failed = |d: usize| d == target || all_failed.contains(&d);
        let mut loads = vec![0usize; layout.n_disks()];
        let mut tasks = Vec::new();
        for &stripe in stripe_ids {
            for row in 0..layout.rows_per_stripe() {
                let locs = layout.row_locations(stripe, row);
                let erased: Vec<usize> = (0..locs.len())
                    .filter(|&p| is_failed(locs[p].disk))
                    .collect();
                for &pos in &erased {
                    if locs[pos].disk != target {
                        continue; // this plan only rebuilds `target`
                    }
                    let spec = code.repair_spec(pos, &erased).ok_or_else(|| {
                        format!(
                            "element (stripe {stripe}, row {row}, pos {pos}) unrecoverable \
                             with disks {all_failed:?} down"
                        )
                    })?;
                    let chosen: Vec<usize> = match spec {
                        RepairSpec::Exact { read } => read,
                        RepairSpec::AnyOf { from, count } => {
                            // Prefer helpers sharing the failed disk's
                            // failure domain — rebuild traffic stays
                            // inside the rack — then balance loads.
                            let domains = scheme.domains();
                            let mut ranked: Vec<(bool, usize, usize, usize)> = from
                                .into_iter()
                                .filter(|&p| !is_failed(locs[p].disk))
                                .map(|p| {
                                    let d = locs[p].disk;
                                    (!domains.same_domain(target, d), loads[d], d, p)
                                })
                                .collect();
                            ranked.sort_unstable();
                            if ranked.len() < count {
                                return Err(format!(
                                    "only {} live sources for (stripe {stripe}, row {row}, \
                                     pos {pos}); need {count}",
                                    ranked.len()
                                ));
                            }
                            ranked
                                .into_iter()
                                .take(count)
                                .map(|(_, _, _, p)| p)
                                .collect()
                        }
                    };
                    debug_assert!(
                        chosen.iter().all(|&p| !is_failed(locs[p].disk)),
                        "repair spec offered a source on a downed disk"
                    );
                    for &p in &chosen {
                        loads[locs[p].disk] += 1;
                    }
                    tasks.push(RepairTask {
                        stripe,
                        row,
                        pos,
                        target: locs[pos],
                        sources: chosen.into_iter().map(|p| (p, locs[p])).collect(),
                    });
                }
            }
        }
        Ok(Self {
            failed: target,
            tasks,
            n_disks: layout.n_disks(),
        })
    }

    /// Elements read from each surviving disk during recovery.
    pub fn read_load(&self) -> Vec<usize> {
        let mut load = vec![0usize; self.n_disks];
        for t in &self.tasks {
            for (_, loc) in &t.sources {
                load[loc.disk] += 1;
            }
        }
        load
    }

    /// Total elements read.
    pub fn total_reads(&self) -> usize {
        self.tasks.iter().map(|t| t.sources.len()).sum()
    }

    /// Elements rebuilt (= elements the failed disk held in the range).
    pub fn total_rebuilt(&self) -> usize {
        self.tasks.len()
    }

    /// Execute one task against fetched bytes, returning the rebuilt
    /// element.
    ///
    /// Returns `None` if `fetched` is missing a source or the sources do
    /// not span the target (cannot happen when the plan's own sources are
    /// supplied).
    pub fn rebuild_one(
        scheme: &Scheme,
        task: &RepairTask,
        fetched: &HashMap<Loc, Vec<u8>>,
        element_size: usize,
    ) -> Option<Vec<u8>> {
        let sources: Vec<(usize, &[u8])> = task
            .sources
            .iter()
            .map(|(p, loc)| fetched.get(loc).map(|b| (*p, b.as_slice())))
            .collect::<Option<Vec<_>>>()?;
        decode::reconstruct_one(scheme.code().generator(), task.pos, &sources, element_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfrm_codes::{CandidateCode, LrcCode, RsCode};
    use ecfrm_layout::{DomainMap, LayoutKind};
    use std::sync::Arc;

    fn ecfrm(code: Arc<dyn CandidateCode>) -> Scheme {
        Scheme::builder(code).layout(LayoutKind::EcFrm).build()
    }

    fn sample_elements(count: usize, size: usize) -> Vec<Vec<u8>> {
        (0..count)
            .map(|i| {
                (0..size)
                    .map(|j| ((i * 59 + j * 17 + 3) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn encode_stripes(scheme: &Scheme, data: &[Vec<u8>], stripes: u64) -> HashMap<Loc, Vec<u8>> {
        let dps = scheme.data_per_stripe();
        let mut all = HashMap::new();
        for s in 0..stripes {
            let refs: Vec<&[u8]> = data[s as usize * dps..(s as usize + 1) * dps]
                .iter()
                .map(|v| v.as_slice())
                .collect();
            for (loc, bytes) in scheme.encode_stripe(s, &refs).iter() {
                all.insert(loc, bytes.to_vec());
            }
        }
        all
    }

    #[test]
    fn recovery_rebuilds_every_element_exactly() {
        let codes: Vec<Arc<dyn CandidateCode>> = vec![
            Arc::new(RsCode::vandermonde(6, 3)),
            Arc::new(LrcCode::new(6, 2, 2)),
        ];
        for code in codes {
            for kind in [LayoutKind::Standard, LayoutKind::Rotated, LayoutKind::EcFrm] {
                let scheme = Scheme::builder(code.clone()).layout(kind).build();
                let stripes = 4u64;
                let dps = scheme.data_per_stripe();
                let data = sample_elements(stripes as usize * dps, 8);
                let all = encode_stripes(&scheme, &data, stripes);
                for failed in 0..scheme.n_disks() {
                    let rec = DiskRecovery::plan(&scheme, failed, stripes);
                    // One rebuilt element per offset of the failed disk.
                    assert_eq!(
                        rec.total_rebuilt() as u64,
                        stripes * scheme.layout().offsets_per_stripe(),
                        "{} failed={failed}",
                        scheme.name()
                    );
                    for task in &rec.tasks {
                        assert_eq!(task.target.disk, failed);
                        for (_, loc) in &task.sources {
                            assert_ne!(loc.disk, failed, "source on failed disk");
                        }
                        let rebuilt = DiskRecovery::rebuild_one(&scheme, task, &all, 8).unwrap();
                        assert_eq!(
                            rebuilt,
                            all[&task.target],
                            "{} failed={failed} task={task:?}",
                            scheme.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lrc_recovery_reads_fewer_elements_than_rs() {
        let rs: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
        let lrc: Arc<dyn CandidateCode> = Arc::new(LrcCode::new(6, 2, 2));
        let rs_rec = DiskRecovery::plan(&ecfrm(rs), 0, 4);
        let lrc_rec = DiskRecovery::plan(&ecfrm(lrc), 0, 4);
        // Per rebuilt element: RS reads k = 6, LRC reads k/l = 3 (data)
        // or slightly more for global parities.
        let rs_per = rs_rec.total_reads() as f64 / rs_rec.total_rebuilt() as f64;
        let lrc_per = lrc_rec.total_reads() as f64 / lrc_rec.total_rebuilt() as f64;
        assert!((rs_per - 6.0).abs() < 1e-9);
        assert!(lrc_per < rs_per, "LRC {lrc_per} vs RS {rs_per}");
    }

    #[test]
    fn ecfrm_recovery_spreads_load_across_all_disks() {
        // With EC-FRM, a failed disk's elements belong to different
        // groups whose sources span all surviving disks.
        let rs: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
        let scheme = ecfrm(rs);
        let rec = DiskRecovery::plan(&scheme, 2, 6);
        let load = rec.read_load();
        assert_eq!(load[2], 0, "failed disk reads nothing");
        let surviving: Vec<usize> = load
            .iter()
            .enumerate()
            .filter(|(d, _)| *d != 2)
            .map(|(_, &l)| l)
            .collect();
        assert!(
            surviving.iter().all(|&l| l > 0),
            "all survivors help: {load:?}"
        );
        let max = *surviving.iter().max().unwrap();
        let min = *surviving.iter().min().unwrap();
        assert!(
            max - min <= rec.total_rebuilt(),
            "recovery load wildly unbalanced: {load:?}"
        );
    }

    #[test]
    fn rack_aware_plan_keeps_rebuild_traffic_inside_the_rack() {
        // Rack 0 holds the failed disk plus exactly k = 6 survivors, so
        // every rebuild can be served without crossing racks — and with
        // domain labels set, it must be.
        let rs: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
        let scheme = Scheme::builder(rs)
            .layout(LayoutKind::EcFrm)
            .domains(DomainMap::from_labels(&[0, 1, 1, 0, 0, 0, 0, 0, 0]))
            .build();
        let rec = DiskRecovery::plan(&scheme, 0, 6);
        let load = rec.read_load();
        assert_eq!(load[1], 0, "cross-rack helper used: {load:?}");
        assert_eq!(load[2], 0, "cross-rack helper used: {load:?}");
        assert!(
            load[3..].iter().all(|&l| l > 0),
            "all in-rack survivors help: {load:?}"
        );
    }

    #[test]
    fn plan_among_avoids_all_downed_disks() {
        // RS(6,3): rebuild disk 0 while disks 4 and 8 are also down.
        let rs: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
        let scheme = ecfrm(rs);
        let stripes = 3u64;
        let dps = scheme.data_per_stripe();
        let data = sample_elements(stripes as usize * dps, 8);
        let all = encode_stripes(&scheme, &data, stripes);
        let rec = DiskRecovery::plan_among(&scheme, 0, &[0, 4, 8], stripes).unwrap();
        assert_eq!(
            rec.total_rebuilt() as u64,
            stripes * scheme.layout().offsets_per_stripe()
        );
        for task in &rec.tasks {
            assert_eq!(task.target.disk, 0);
            for (_, loc) in &task.sources {
                assert!(![0, 4, 8].contains(&loc.disk), "source on downed disk");
            }
            let rebuilt = DiskRecovery::rebuild_one(&scheme, task, &all, 8).unwrap();
            assert_eq!(rebuilt, all[&task.target]);
        }
    }

    #[test]
    fn plan_among_fails_beyond_tolerance() {
        let rs: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
        let scheme = ecfrm(rs);
        // Four failures exceed RS(6,3)'s MDS limit.
        assert!(DiskRecovery::plan_among(&scheme, 0, &[0, 1, 2, 3], 2).is_err());
    }

    #[test]
    #[should_panic]
    fn invalid_disk_rejected() {
        let rs: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
        let scheme = Scheme::builder(rs).build();
        DiskRecovery::plan(&scheme, 9, 1);
    }
}

//! Write-path planning: full-stripe appends and single-element updates.
//!
//! The paper's premise (§I, §II-D) is that cloud stores buffer appends
//! until a full stripe is written, so every code pays the same write
//! cost and *reads* are where layouts differ. This module makes that
//! claim checkable:
//!
//! * [`append_stripe_plan`] — the I/O set of one full-stripe write:
//!   always exactly one element per disk per grid row, identical across
//!   layouts;
//! * [`update_plan`] — the I/O set of an in-place single-element update
//!   (read-modify-write of the element's group parities), for the
//!   overwrite workloads the paper's append-only assumption excludes.
//!   The *count* is layout-invariant (1 + parities reads and writes);
//!   only the disks touched differ.

use ecfrm_layout::Loc;

use crate::scheme::Scheme;

/// The I/O set of a write operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WritePlan {
    /// Elements that must be read first (old data + old parities for
    /// delta updates; empty for full-stripe writes).
    pub reads: Vec<Loc>,
    /// Elements that will be written.
    pub writes: Vec<Loc>,
    n_disks: usize,
}

impl WritePlan {
    /// Total I/O operations (reads + writes).
    pub fn total_ios(&self) -> usize {
        self.reads.len() + self.writes.len()
    }

    /// Combined per-disk I/O counts.
    pub fn per_disk_io(&self) -> Vec<usize> {
        let mut load = vec![0usize; self.n_disks];
        for l in self.reads.iter().chain(&self.writes) {
            load[l.disk] += 1;
        }
        load
    }

    /// I/Os on the most-loaded disk.
    pub fn max_io(&self) -> usize {
        self.per_disk_io().into_iter().max().unwrap_or(0)
    }
}

/// The write set of one full-stripe append: every element of the stripe,
/// no reads (paper §I: "writes are usually accumulated … until a block
/// is fully written and then the blocks is erasure coded").
pub fn append_stripe_plan(scheme: &Scheme, stripe: u64) -> WritePlan {
    let layout = scheme.layout();
    let mut writes = Vec::with_capacity(layout.total_per_stripe());
    for row in 0..layout.rows_per_stripe() {
        writes.extend(layout.row_locations(stripe, row));
    }
    WritePlan {
        reads: Vec::new(),
        writes,
        n_disks: layout.n_disks(),
    }
}

/// The I/O set of updating data element `idx` in place, parity-delta
/// style: read the old data element and the group's old parities, write
/// the new data element and the recomputed parities.
pub fn update_plan(scheme: &Scheme, idx: u64) -> WritePlan {
    let layout = scheme.layout();
    let (stripe, row, _pos) = layout.data_coordinates(idx);
    let data_loc = layout.data_location(idx);
    let parity_count = scheme.code().n() - scheme.code().k();
    let parity_locs: Vec<Loc> = (0..parity_count)
        .map(|p| layout.parity_location(stripe, row, p))
        .collect();
    let mut reads = vec![data_loc];
    reads.extend(&parity_locs);
    let mut writes = vec![data_loc];
    writes.extend(&parity_locs);
    WritePlan {
        reads,
        writes,
        n_disks: layout.n_disks(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfrm_codes::{CandidateCode, LrcCode, RsCode};
    use ecfrm_layout::LayoutKind;
    use std::sync::Arc;

    fn forms(code: Arc<dyn CandidateCode>) -> [Scheme; 3] {
        [LayoutKind::Standard, LayoutKind::Rotated, LayoutKind::EcFrm]
            .map(|kind| Scheme::builder(code.clone()).layout(kind).build())
    }

    #[test]
    fn full_stripe_write_cost_is_layout_invariant() {
        // §II-D's claim: full-stripe writes cost the same in every form.
        let code: Arc<dyn CandidateCode> = Arc::new(LrcCode::new(6, 2, 2));
        let costs: Vec<(usize, usize)> = forms(code)
            .iter()
            .map(|s| {
                let p = append_stripe_plan(s, 3);
                (p.total_ios(), p.max_io())
            })
            .collect();
        // Same total I/O per data volume: EC-FRM stripes carry
        // rows_per_stripe× the data, so normalise per candidate row.
        let std_per_row = costs[0].0;
        assert_eq!(costs[1].0, std_per_row, "rotated");
        assert_eq!(costs[2].0 / 5, std_per_row, "ecfrm (5 rows/stripe)");
        // Per-disk balance: a full stripe writes each disk equally.
        for scheme in forms(Arc::new(LrcCode::new(6, 2, 2))) {
            let p = append_stripe_plan(&scheme, 0);
            let load = p.per_disk_io();
            assert!(
                load.iter().all(|&l| l == load[0]),
                "{}: unbalanced stripe write {load:?}",
                scheme.name()
            );
        }
    }

    #[test]
    fn update_cost_is_layout_invariant_in_count() {
        let code: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
        for scheme in forms(code) {
            for idx in 0..24u64 {
                let p = update_plan(&scheme, idx);
                // 1 data + 3 parities, read and write each.
                assert_eq!(p.total_ios(), 8, "{} idx {idx}", scheme.name());
                assert_eq!(p.reads.len(), 4);
                assert_eq!(p.writes, p.reads);
                // All on distinct disks (the group spans distinct disks).
                assert_eq!(
                    p.max_io(),
                    2,
                    "{} idx {idx}: read+write per disk",
                    scheme.name()
                );
            }
        }
    }

    #[test]
    fn update_touches_the_right_group() {
        let code: Arc<dyn CandidateCode> = Arc::new(LrcCode::new(6, 2, 2));
        let scheme = Scheme::builder(code).layout(LayoutKind::EcFrm).build();
        // Element 7 is in group 1; its parities are p3,2 p3,3 p4,4 p4,5
        // (paper §IV-E).
        let p = update_plan(&scheme, 7);
        let parity_disks: Vec<usize> = p.reads[1..].iter().map(|l| l.disk).collect();
        assert_eq!(parity_disks, vec![2, 3, 4, 5]);
    }

    #[test]
    fn append_plan_covers_whole_grid_once() {
        let code: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
        let scheme = Scheme::builder(code).layout(LayoutKind::EcFrm).build();
        let p = append_stripe_plan(&scheme, 2);
        assert!(p.reads.is_empty());
        let mut locs = p.writes.clone();
        let before = locs.len();
        locs.sort_unstable();
        locs.dedup();
        assert_eq!(locs.len(), before, "duplicate write in stripe plan");
        assert_eq!(before, scheme.layout().total_per_stripe());
    }
}

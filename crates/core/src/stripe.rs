//! In-memory image of one encoded layout stripe.
//!
//! A stripe is a `rows × n_disks` grid of equal-sized elements (paper
//! Figure 4): for one-row layouts the grid is `1 × n`; for EC-FRM it is
//! `n/gcd(n,k) × n`. [`StripeImage`] owns the bytes and is addressed by
//! in-stripe grid coordinates, letting the object store and the tests
//! move whole stripes to and from simulated disks.

use ecfrm_layout::{Layout, Loc};

/// One fully (or partially) materialised stripe.
#[derive(Debug, Clone)]
pub struct StripeImage {
    /// Which layout stripe this is.
    pub stripe: u64,
    /// Grid width = number of disks.
    pub n_disks: usize,
    /// Grid height = offsets per stripe.
    pub rows: usize,
    /// Element size in bytes.
    pub element_size: usize,
    cells: Vec<Option<Vec<u8>>>,
}

impl StripeImage {
    /// An empty (all-`None`) stripe image for `layout`, stripe index
    /// `stripe`, with `element_size`-byte elements.
    pub fn empty(layout: &dyn Layout, stripe: u64, element_size: usize) -> Self {
        let n_disks = layout.n_disks();
        let rows = layout.offsets_per_stripe() as usize;
        Self {
            stripe,
            n_disks,
            rows,
            element_size,
            cells: vec![None; n_disks * rows],
        }
    }

    #[inline]
    fn cell_index(&self, loc: Loc) -> usize {
        let row = (loc.offset - self.stripe * self.rows as u64) as usize;
        debug_assert!(row < self.rows, "offset outside this stripe");
        debug_assert!(loc.disk < self.n_disks);
        row * self.n_disks + loc.disk
    }

    /// Element bytes at `loc`, if present.
    pub fn get(&self, loc: Loc) -> Option<&[u8]> {
        self.cells[self.cell_index(loc)].as_deref()
    }

    /// Store element bytes at `loc`.
    ///
    /// # Panics
    /// Panics if the byte length differs from `element_size`.
    pub fn put(&mut self, loc: Loc, bytes: Vec<u8>) {
        assert_eq!(bytes.len(), self.element_size, "element size mismatch");
        let i = self.cell_index(loc);
        self.cells[i] = Some(bytes);
    }

    /// Remove (erase) the element at `loc`, returning it.
    pub fn take(&mut self, loc: Loc) -> Option<Vec<u8>> {
        let i = self.cell_index(loc);
        self.cells[i].take()
    }

    /// True when every cell holds bytes.
    pub fn is_complete(&self) -> bool {
        self.cells.iter().all(|c| c.is_some())
    }

    /// Number of filled cells.
    pub fn filled(&self) -> usize {
        self.cells.iter().filter(|c| c.is_some()).count()
    }

    /// Iterate `(Loc, &bytes)` over filled cells.
    pub fn iter(&self) -> impl Iterator<Item = (Loc, &[u8])> + '_ {
        let base = self.stripe * self.rows as u64;
        self.cells.iter().enumerate().filter_map(move |(i, c)| {
            c.as_deref().map(|bytes| {
                (
                    Loc::new(i % self.n_disks, base + (i / self.n_disks) as u64),
                    bytes,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfrm_layout::{EcFrmLayout, StandardLayout};

    #[test]
    fn put_get_take_roundtrip() {
        let layout = StandardLayout::new(5, 3);
        let mut img = StripeImage::empty(&layout, 2, 4);
        let loc = Loc::new(1, 2); // offset 2 = stripe 2 for standard
        img.put(loc, vec![9, 8, 7, 6]);
        assert_eq!(img.get(loc), Some(&[9u8, 8, 7, 6][..]));
        assert_eq!(img.filled(), 1);
        assert!(!img.is_complete());
        assert_eq!(img.take(loc), Some(vec![9, 8, 7, 6]));
        assert_eq!(img.get(loc), None);
    }

    #[test]
    fn ecfrm_grid_dimensions() {
        let layout = EcFrmLayout::new(10, 6);
        let img = StripeImage::empty(&layout, 0, 8);
        assert_eq!(img.rows, 5);
        assert_eq!(img.n_disks, 10);
    }

    #[test]
    fn iter_yields_absolute_locations() {
        let layout = EcFrmLayout::new(10, 6);
        let mut img = StripeImage::empty(&layout, 3, 2);
        let loc = Loc::new(7, 3 * 5 + 4); // stripe 3, grid row 4
        img.put(loc, vec![1, 2]);
        let collected: Vec<Loc> = img.iter().map(|(l, _)| l).collect();
        assert_eq!(collected, vec![loc]);
    }

    #[test]
    #[should_panic]
    fn wrong_element_size_panics() {
        let layout = StandardLayout::new(5, 3);
        let mut img = StripeImage::empty(&layout, 0, 4);
        img.put(Loc::new(0, 0), vec![1, 2, 3]);
    }
}

//! Read plans: the per-disk access sets a read operation induces.
//!
//! The paper's performance model (§III, §V-A) is that a read completes
//! when the slowest — in practice the most-loaded — disk finishes, so the
//! quantity a layout is judged on is the **maximum per-disk element
//! count** of the access set. A [`ReadPlan`] records every physical
//! element fetch (demand or repair) exactly once and exposes the derived
//! metrics: per-disk loads, max load, and degraded-read cost (total
//! fetched / requested — the bandwidth metric of Figure 9a/9b).

use ecfrm_layout::Loc;

/// Why an element is being fetched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Purpose {
    /// The element itself was requested by the user.
    Demand,
    /// The element feeds the reconstruction of a lost requested element.
    Repair,
}

/// One physical element fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fetch {
    /// Where the element lives.
    pub loc: Loc,
    /// Layout stripe containing it.
    pub stripe: u64,
    /// Candidate row (group) within the stripe.
    pub row: usize,
    /// Position within the candidate row (`0..n`).
    pub pos: usize,
    /// Demand or repair traffic.
    pub purpose: Purpose,
}

/// The complete access set of one read operation.
#[derive(Debug, Clone)]
pub struct ReadPlan {
    n_disks: usize,
    /// Number of data elements the user requested.
    pub requested: usize,
    /// Unique physical fetches (no location appears twice).
    pub fetches: Vec<Fetch>,
    /// Requested elements that could not be served (unrecoverable); empty
    /// in every scenario within the code's fault tolerance.
    pub unreadable: Vec<u64>,
}

impl ReadPlan {
    /// Create an empty plan over `n_disks` disks for `requested`
    /// elements.
    pub fn new(n_disks: usize, requested: usize) -> Self {
        Self {
            n_disks,
            requested,
            fetches: Vec::with_capacity(requested),
            unreadable: Vec::new(),
        }
    }

    /// Number of disks in the array.
    pub fn n_disks(&self) -> usize {
        self.n_disks
    }

    /// Elements fetched from each disk.
    pub fn per_disk_load(&self) -> Vec<usize> {
        let mut load = vec![0usize; self.n_disks];
        for f in &self.fetches {
            load[f.loc.disk] += 1;
        }
        load
    }

    /// The bottleneck: elements fetched from the most-loaded disk.
    /// Zero-element reads have max load 0.
    pub fn max_load(&self) -> usize {
        self.per_disk_load().into_iter().max().unwrap_or(0)
    }

    /// Total elements fetched (demand + repair).
    pub fn total_fetched(&self) -> usize {
        self.fetches.len()
    }

    /// Elements fetched only for reconstruction.
    pub fn repair_fetched(&self) -> usize {
        self.fetches
            .iter()
            .filter(|f| f.purpose == Purpose::Repair)
            .count()
    }

    /// Degraded read cost: total fetched / requested (Figure 9a/9b's
    /// bandwidth-usage metric). 0 for empty reads.
    pub fn cost(&self) -> f64 {
        if self.requested == 0 {
            0.0
        } else {
            self.total_fetched() as f64 / self.requested as f64
        }
    }

    /// True if some fetch already targets `loc`.
    pub fn contains(&self, loc: Loc) -> bool {
        self.fetches.iter().any(|f| f.loc == loc)
    }

    /// Number of disks that serve at least one element.
    pub fn disks_touched(&self) -> usize {
        self.per_disk_load().iter().filter(|&&l| l > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetch(disk: usize, offset: u64, purpose: Purpose) -> Fetch {
        Fetch {
            loc: Loc::new(disk, offset),
            stripe: 0,
            row: 0,
            pos: disk,
            purpose,
        }
    }

    #[test]
    fn loads_and_max() {
        let mut p = ReadPlan::new(4, 3);
        p.fetches.push(fetch(0, 0, Purpose::Demand));
        p.fetches.push(fetch(0, 1, Purpose::Demand));
        p.fetches.push(fetch(2, 0, Purpose::Repair));
        assert_eq!(p.per_disk_load(), vec![2, 0, 1, 0]);
        assert_eq!(p.max_load(), 2);
        assert_eq!(p.total_fetched(), 3);
        assert_eq!(p.repair_fetched(), 1);
        assert_eq!(p.disks_touched(), 2);
        assert!((p.cost() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_plan() {
        let p = ReadPlan::new(8, 0);
        assert_eq!(p.max_load(), 0);
        assert_eq!(p.cost(), 0.0);
        assert_eq!(p.disks_touched(), 0);
    }

    #[test]
    fn contains_checks_location() {
        let mut p = ReadPlan::new(2, 1);
        p.fetches.push(fetch(1, 7, Purpose::Demand));
        assert!(p.contains(Loc::new(1, 7)));
        assert!(!p.contains(Loc::new(1, 8)));
        assert!(!p.contains(Loc::new(0, 7)));
    }
}

//! [`Scheme`]: a candidate code bound to a layout — the unit the paper
//! evaluates ("RS", "R-RS", "EC-FRM-RS", …).

use std::collections::HashMap;
use std::sync::Arc;

use ecfrm_codes::{decode, CandidateCode, CodeError, DecoderCache, RepairSpec};
use ecfrm_layout::{DomainMap, Layout, LayoutKind, Loc};
use ecfrm_obs::Recorder;

use crate::plan::{Fetch, Purpose, ReadPlan};
use crate::stripe::StripeImage;

/// Per-read context for [`Scheme::assemble_read`]: an optional
/// [`DecoderCache`] (reuse solved coefficient vectors across repeated
/// repairs of the same erasure geometry) and an optional [`Recorder`]
/// (decode timing lands in its `decode_us` histogram and
/// `decoded_elements` counter).
///
/// `ReadCtx::default()` is the plain uncached, unrecorded read.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReadCtx<'a> {
    cache: Option<&'a DecoderCache>,
    recorder: Option<&'a Recorder>,
}

impl<'a> ReadCtx<'a> {
    /// No cache, no recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reuse solved decode coefficients from `cache`.
    pub fn with_cache(mut self, cache: &'a DecoderCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Record decode timings into `recorder`.
    pub fn with_recorder(mut self, recorder: &'a Recorder) -> Self {
        self.recorder = Some(recorder);
        self
    }
}

/// A complete erasure-coding scheme: `(n, k)` candidate code + element
/// placement. All read planning, encoding and reconstruction go through
/// this type.
#[derive(Clone)]
pub struct Scheme {
    code: Arc<dyn CandidateCode>,
    layout: Arc<dyn Layout>,
    domains: Arc<DomainMap>,
}

impl std::fmt::Debug for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Scheme({})", self.name())
    }
}

impl Scheme {
    /// Bind `code` to an arbitrary layout.
    ///
    /// # Panics
    /// Panics if the layout's `(n, k)` disagrees with the code's.
    pub fn new(code: Arc<dyn CandidateCode>, layout: Arc<dyn Layout>) -> Self {
        let domains = Arc::new(DomainMap::single(layout.n_disks()));
        Self::with_domains(code, layout, domains)
    }

    /// Bind `code` to a layout with explicit failure-domain labels.
    /// Repair and degraded-read planning prefer helper disks that share
    /// a domain with the disk being repaired.
    ///
    /// # Panics
    /// Panics if the layout's `(n, k)` disagrees with the code's, or
    /// the domain map covers a different number of disks.
    pub fn with_domains(
        code: Arc<dyn CandidateCode>,
        layout: Arc<dyn Layout>,
        domains: Arc<DomainMap>,
    ) -> Self {
        assert_eq!(layout.code_n(), code.n(), "layout n != code n");
        assert_eq!(layout.code_k(), code.k(), "layout k != code k");
        assert_eq!(
            domains.n_disks(),
            layout.n_disks(),
            "domain map disks != layout disks"
        );
        Self {
            code,
            layout,
            domains,
        }
    }

    /// Start building a scheme: pick the layout (and, for shuffled, the
    /// seed) on the returned [`SchemeBuilder`].
    ///
    /// ```
    /// use std::sync::Arc;
    /// use ecfrm_codes::RsCode;
    /// use ecfrm_core::{LayoutKind, Scheme};
    ///
    /// let scheme = Scheme::builder(Arc::new(RsCode::vandermonde(6, 3)))
    ///     .layout(LayoutKind::EcFrm)
    ///     .build();
    /// assert_eq!(scheme.name(), "EC-FRM-RS(6,3)");
    /// ```
    pub fn builder(code: Arc<dyn CandidateCode>) -> SchemeBuilder {
        SchemeBuilder {
            code,
            layout: LayoutKind::default(),
            seed: 0,
            domains: None,
        }
    }

    /// The candidate code.
    pub fn code(&self) -> &dyn CandidateCode {
        self.code.as_ref()
    }

    /// The layout.
    pub fn layout(&self) -> &dyn Layout {
        self.layout.as_ref()
    }

    /// Failure-domain labels; [`DomainMap::single`] unless configured.
    pub fn domains(&self) -> &DomainMap {
        &self.domains
    }

    /// Display name following the paper's convention: `RS(6,3)`,
    /// `R-RS(6,3)`, `EC-FRM-RS(6,3)`, `SHUF-RS(6,3)`.
    pub fn name(&self) -> String {
        match self.layout.name() {
            "standard" => self.code.name(),
            "rotated" => format!("R-{}", self.code.name()),
            "ecfrm" => format!("EC-FRM-{}", self.code.name()),
            other => format!("{}-{}", other.to_uppercase(), self.code.name()),
        }
    }

    /// Number of disks (`n`).
    pub fn n_disks(&self) -> usize {
        self.layout.n_disks()
    }

    /// Data elements per layout stripe.
    pub fn data_per_stripe(&self) -> usize {
        self.layout.data_per_stripe()
    }

    /// Encode one layout stripe (paper §IV-B Step 2): group `g`'s
    /// parities are computed from data elements `g·k .. g·k+k` with the
    /// candidate code's own encoding rules.
    ///
    /// `data` must hold exactly [`Self::data_per_stripe`] equally-sized
    /// regions, in logical order.
    ///
    /// # Panics
    /// Panics on arity or length mismatches.
    pub fn encode_stripe(&self, stripe: u64, data: &[&[u8]]) -> StripeImage {
        let dps = self.data_per_stripe();
        let element_size = data.first().map_or(0, |d| d.len());
        let parities = self.encode_stripe_parities(stripe, data); // validates shapes
        let mut img = StripeImage::empty(self.layout.as_ref(), stripe, element_size);
        let base = stripe * dps as u64;
        for (t, d) in data.iter().enumerate() {
            img.put(self.layout.data_location(base + t as u64), d.to_vec());
        }
        for (loc, bytes) in parities {
            img.put(loc, bytes);
        }
        debug_assert!(img.is_complete());
        img
    }

    /// Compute only the parity cells of one layout stripe, returning
    /// `(location, bytes)` pairs. This is the zero-copy building block
    /// behind [`Self::encode_stripe`]: callers that already own the data
    /// regions (e.g. the store's stripe-seal pipeline slicing its pending
    /// buffer) avoid materialising a [`StripeImage`] full of data copies.
    ///
    /// # Panics
    /// Panics on arity or length mismatches.
    pub fn encode_stripe_parities(&self, stripe: u64, data: &[&[u8]]) -> Vec<(Loc, Vec<u8>)> {
        let dps = self.data_per_stripe();
        assert_eq!(data.len(), dps, "expected {dps} data elements per stripe");
        let element_size = data.first().map_or(0, |d| d.len());
        assert!(
            data.iter().all(|d| d.len() == element_size),
            "all elements in a stripe must have equal size"
        );
        let k = self.code.k();
        let pcount = self.code.n() - k;
        let mut out = Vec::with_capacity(self.layout.rows_per_stripe() * pcount);
        for g in 0..self.layout.rows_per_stripe() {
            let group_data = &data[g * k..(g + 1) * k];
            let mut parity = vec![vec![0u8; element_size]; pcount];
            self.code.encode(group_data, &mut parity);
            for (p, bytes) in parity.into_iter().enumerate() {
                out.push((self.layout.parity_location(stripe, g, p), bytes));
            }
        }
        out
    }

    /// Plan a normal read of data elements `start .. start+count`
    /// (paper §VI-B's workload unit). Every element is a demand fetch
    /// from its own disk.
    pub fn normal_read_plan(&self, start: u64, count: usize) -> ReadPlan {
        let mut plan = ReadPlan::new(self.n_disks(), count);
        for i in 0..count as u64 {
            let idx = start + i;
            let (stripe, row, pos) = self.layout.data_coordinates(idx);
            plan.fetches.push(Fetch {
                loc: self.layout.data_location(idx),
                stripe,
                row,
                pos,
                purpose: Purpose::Demand,
            });
        }
        plan
    }

    /// Plan a degraded read of `start .. start+count` with the disks in
    /// `failed` unavailable (paper §VI-C: one random erased disk).
    ///
    /// Demand elements on surviving disks are fetched directly; each
    /// requested element on a failed disk is reconstructed within its
    /// group, choosing repair sources that (a) are already being fetched
    /// or (b) sit on the least-loaded surviving disks — greedy
    /// minimisation of the bottleneck disk.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use ecfrm_codes::LrcCode;
    /// use ecfrm_core::{LayoutKind, Scheme};
    ///
    /// let scheme = Scheme::builder(Arc::new(LrcCode::new(6, 2, 2)))
    ///     .layout(LayoutKind::EcFrm)
    ///     .build();
    /// let plan = scheme.degraded_read_plan(0, 8, &[0]);
    /// assert!(plan.unreadable.is_empty());          // single failure: readable
    /// assert!(plan.fetches.iter().all(|f| f.loc.disk != 0));
    /// assert!(plan.cost() >= 1.0);                  // repair adds traffic
    /// ```
    pub fn degraded_read_plan(&self, start: u64, count: usize, failed: &[usize]) -> ReadPlan {
        let mut plan = ReadPlan::new(self.n_disks(), count);
        let is_failed = |d: usize| failed.contains(&d);
        let mut loads = vec![0usize; self.n_disks()];
        let mut lost: Vec<(u64, u64, usize, usize)> = Vec::new();

        for i in 0..count as u64 {
            let idx = start + i;
            let loc = self.layout.data_location(idx);
            let (stripe, row, pos) = self.layout.data_coordinates(idx);
            if is_failed(loc.disk) {
                lost.push((idx, stripe, row, pos));
            } else {
                plan.fetches.push(Fetch {
                    loc,
                    stripe,
                    row,
                    pos,
                    purpose: Purpose::Demand,
                });
                loads[loc.disk] += 1;
            }
        }

        for (idx, stripe, row, pos) in lost {
            let row_locs = self.layout.row_locations(stripe, row);
            let erased: Vec<usize> = (0..row_locs.len())
                .filter(|&p| is_failed(row_locs[p].disk))
                .collect();
            let Some(spec) = self.code.repair_spec(pos, &erased) else {
                plan.unreadable.push(idx);
                continue;
            };
            let add = |p: usize, plan: &mut ReadPlan, loads: &mut [usize]| {
                let loc = row_locs[p];
                debug_assert!(!is_failed(loc.disk));
                if !plan.contains(loc) {
                    plan.fetches.push(Fetch {
                        loc,
                        stripe,
                        row,
                        pos: p,
                        purpose: Purpose::Repair,
                    });
                    loads[loc.disk] += 1;
                }
            };
            match spec {
                RepairSpec::Exact { read } => {
                    for p in read {
                        add(p, &mut plan, &mut loads);
                    }
                }
                RepairSpec::AnyOf { from, count: need } => {
                    // Free sources first: already fetched for this plan.
                    let (have, candidates): (Vec<usize>, Vec<usize>) =
                        from.into_iter().partition(|&p| plan.contains(row_locs[p]));
                    let mut chosen: Vec<usize> = have.into_iter().take(need).collect();
                    if chosen.len() < need {
                        // Remaining sources: prefer helpers in the lost
                        // disk's failure domain (repair traffic stays
                        // inside the rack), then the least-loaded
                        // surviving disks, deterministically.
                        let target_disk = row_locs[pos].disk;
                        let mut ranked: Vec<(bool, usize, usize, usize)> = candidates
                            .into_iter()
                            .map(|p| {
                                let d = row_locs[p].disk;
                                (!self.domains.same_domain(target_disk, d), loads[d], d, p)
                            })
                            .collect();
                        ranked.sort_unstable();
                        for (_, _, _, p) in ranked.into_iter().take(need - chosen.len()) {
                            chosen.push(p);
                        }
                    }
                    debug_assert_eq!(chosen.len(), need, "repair spec under-provisioned");
                    for p in chosen {
                        add(p, &mut plan, &mut loads);
                    }
                }
            }
        }
        plan
    }

    /// Materialise the requested data elements from fetched bytes,
    /// reconstructing any element that was not fetched directly
    /// (paper §IV-D's per-group decode).
    ///
    /// `fetched` maps every planned location to its bytes. Returns the
    /// `count` data regions in logical order.
    ///
    /// `ctx` carries the optional per-read extras: a
    /// [`DecoderCache`] (repeated repairs of the same erasure geometry —
    /// every row while one disk is down — reuse solved coefficient
    /// vectors instead of re-running Gaussian elimination) and a
    /// [`Recorder`] for decode timing. Pass `ReadCtx::default()` for a
    /// plain read.
    pub fn assemble_read(
        &self,
        start: u64,
        count: usize,
        fetched: &HashMap<Loc, Vec<u8>>,
        ctx: ReadCtx<'_>,
    ) -> Result<Vec<Vec<u8>>, CodeError> {
        let element_size = match fetched.values().next() {
            Some(v) => v.len(),
            None if count == 0 => return Ok(Vec::new()),
            None => {
                return Err(CodeError::Shape("no fetched data to assemble".into()));
            }
        };
        let mut out = Vec::with_capacity(count);
        // Resolve instruments once per call, not per element.
        let decode_hist = ctx.recorder.map(|r| r.histogram("decode_us"));
        let mut decoded = 0u64;
        for i in 0..count as u64 {
            let idx = start + i;
            let loc = self.layout.data_location(idx);
            if let Some(bytes) = fetched.get(&loc) {
                out.push(bytes.clone());
                continue;
            }
            // Reconstruct from whatever same-row fetches are available.
            let (stripe, row, pos) = self.layout.data_coordinates(idx);
            let row_locs = self.layout.row_locations(stripe, row);
            let sources: Vec<(usize, &[u8])> = row_locs
                .iter()
                .enumerate()
                .filter(|(p, _)| *p != pos)
                .filter_map(|(p, l)| fetched.get(l).map(|b| (p, b.as_slice())))
                .collect();
            let t0 = decode_hist.as_ref().map(|_| std::time::Instant::now());
            let rebuilt = match ctx.cache {
                Some(c) => c.reconstruct(pos, &sources, element_size),
                None => decode::reconstruct_one(self.code.generator(), pos, &sources, element_size),
            }
            .ok_or(CodeError::Unrecoverable { erased: vec![pos] })?;
            if let (Some(h), Some(t0)) = (&decode_hist, t0) {
                h.record_duration(t0.elapsed());
                decoded += 1;
            }
            out.push(rebuilt);
        }
        if let Some(r) = ctx.recorder {
            if decoded > 0 {
                r.counter("decoded_elements").add(decoded);
            }
        }
        Ok(out)
    }

    /// Check that every pattern of `f` simultaneous *disk* failures is
    /// recoverable across `stripes` consecutive stripes — the
    /// machine-checked form of the paper's §IV-C claim that EC-FRM
    /// preserves candidate-code fault tolerance.
    ///
    /// Rotated and shuffled layouts are not stripe-invariant, so callers
    /// should pass at least `n` stripes for them.
    pub fn verify_disk_tolerance(&self, f: usize, stripes: u64) -> bool {
        let n = self.n_disks();
        if f > n {
            return false;
        }
        let mut disks: Vec<usize> = (0..f).collect();
        loop {
            for stripe in 0..stripes {
                for row in 0..self.layout.rows_per_stripe() {
                    let locs = self.layout.row_locations(stripe, row);
                    let erased: Vec<usize> = (0..locs.len())
                        .filter(|&p| disks.contains(&locs[p].disk))
                        .collect();
                    if !self.code.is_recoverable(&erased) {
                        return false;
                    }
                }
            }
            // Next f-combination of disks.
            let mut advanced = false;
            let mut i = f;
            while i > 0 {
                i -= 1;
                if disks[i] != i + n - f {
                    disks[i] += 1;
                    for j in i + 1..f {
                        disks[j] = disks[j - 1] + 1;
                    }
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return true;
            }
        }
    }
}

/// Builds a [`Scheme`] from a candidate code, a [`LayoutKind`], and (for
/// [`LayoutKind::Shuffled`]) a permutation seed. Obtained from
/// [`Scheme::builder`]; the default layout is [`LayoutKind::Standard`]
/// and the default seed is 0.
#[derive(Clone)]
pub struct SchemeBuilder {
    code: Arc<dyn CandidateCode>,
    layout: LayoutKind,
    seed: u64,
    domains: Option<DomainMap>,
}

impl std::fmt::Debug for SchemeBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SchemeBuilder({}, {}, seed {})",
            self.code.name(),
            self.layout,
            self.seed
        )
    }
}

impl SchemeBuilder {
    /// Choose the layout form.
    pub fn layout(mut self, kind: LayoutKind) -> Self {
        self.layout = kind;
        self
    }

    /// Seed for layouts with randomised placement (only
    /// [`LayoutKind::Shuffled`] consults it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Explicit failure-domain labels (see [`DomainMap`]). Must cover
    /// exactly the layout's disks.
    pub fn domains(mut self, map: DomainMap) -> Self {
        self.domains = Some(map);
        self
    }

    /// Convenience: `racks` contiguous failure domains of (near-)equal
    /// size over the code's `n` disks.
    pub fn racks(self, racks: usize) -> Self {
        let n = self.code.n();
        self.domains(DomainMap::contiguous(n, racks))
    }

    /// Construct the scheme.
    pub fn build(self) -> Scheme {
        let layout = self.layout.build(self.code.n(), self.code.k(), self.seed);
        match self.domains {
            Some(map) => Scheme::with_domains(self.code, layout, Arc::new(map)),
            None => Scheme::new(self.code, layout),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfrm_codes::{LrcCode, RsCode, XorCode};
    use ecfrm_layout::StandardLayout;

    fn sample_elements(count: usize, size: usize) -> Vec<Vec<u8>> {
        (0..count)
            .map(|i| {
                (0..size)
                    .map(|j| ((i * 101 + j * 31 + 7) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    fn form(code: Arc<dyn CandidateCode>, kind: LayoutKind) -> Scheme {
        Scheme::builder(code).layout(kind).build()
    }

    fn all_schemes(code: Arc<dyn CandidateCode>) -> Vec<Scheme> {
        vec![
            form(code.clone(), LayoutKind::Standard),
            form(code.clone(), LayoutKind::Rotated),
            form(code.clone(), LayoutKind::EcFrm),
            Scheme::builder(code)
                .layout(LayoutKind::Shuffled)
                .seed(11)
                .build(),
        ]
    }

    #[test]
    fn names_follow_paper_convention() {
        let rs: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
        assert_eq!(form(rs.clone(), LayoutKind::Standard).name(), "RS(6,3)");
        assert_eq!(form(rs.clone(), LayoutKind::Rotated).name(), "R-RS(6,3)");
        assert_eq!(form(rs.clone(), LayoutKind::EcFrm).name(), "EC-FRM-RS(6,3)");
        assert_eq!(
            Scheme::builder(rs)
                .layout(LayoutKind::Shuffled)
                .seed(1)
                .build()
                .name(),
            "SHUFFLED-RS(6,3)"
        );
        let lrc: Arc<dyn CandidateCode> = Arc::new(LrcCode::new(6, 2, 2));
        assert_eq!(form(lrc, LayoutKind::EcFrm).name(), "EC-FRM-LRC(6,2,2)");
    }

    #[test]
    fn encode_stripe_is_complete_for_all_layouts() {
        let lrc: Arc<dyn CandidateCode> = Arc::new(LrcCode::new(6, 2, 2));
        for scheme in all_schemes(lrc) {
            let dps = scheme.data_per_stripe();
            let data = sample_elements(dps, 16);
            let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
            let img = scheme.encode_stripe(0, &refs);
            assert!(img.is_complete(), "{}", scheme.name());
            assert_eq!(
                img.filled(),
                scheme.layout().total_per_stripe(),
                "{}",
                scheme.name()
            );
        }
    }

    #[test]
    fn figure_3a_standard_lrc_bottleneck() {
        // Figure 3(a): 8-element read over standard (6,2,2) LRC — the
        // most loaded disk serves 2 elements.
        let lrc: Arc<dyn CandidateCode> = Arc::new(LrcCode::new(6, 2, 2));
        let plan = form(lrc, LayoutKind::Standard).normal_read_plan(0, 8);
        assert_eq!(plan.max_load(), 2);
        assert_eq!(plan.total_fetched(), 8);
        assert_eq!(plan.disks_touched(), 6);
    }

    #[test]
    fn figure_3b_rotated_lrc_still_bottlenecked() {
        let lrc: Arc<dyn CandidateCode> = Arc::new(LrcCode::new(6, 2, 2));
        let plan = form(lrc, LayoutKind::Rotated).normal_read_plan(0, 8);
        assert_eq!(plan.max_load(), 2);
    }

    #[test]
    fn figure_7a_ecfrm_lrc_fixes_the_bottleneck() {
        // Figure 7(a): same 8-element read over (6,2,2) EC-FRM-LRC — max
        // load drops to 1 because all 10 disks hold data.
        let lrc: Arc<dyn CandidateCode> = Arc::new(LrcCode::new(6, 2, 2));
        let plan = form(lrc, LayoutKind::EcFrm).normal_read_plan(0, 8);
        assert_eq!(plan.max_load(), 1);
        assert_eq!(plan.disks_touched(), 8);
    }

    #[test]
    fn normal_read_max_load_bound_ecfrm() {
        // EC-FRM guarantee: a c-element read loads no disk more than
        // ceil(c / n) — data is sequential across all n disks.
        let rs: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
        let scheme = form(rs, LayoutKind::EcFrm);
        for start in 0..30u64 {
            for count in 1..=20usize {
                let plan = scheme.normal_read_plan(start, count);
                let bound = count.div_ceil(9);
                assert!(
                    plan.max_load() <= bound,
                    "start={start} count={count}: {} > {bound}",
                    plan.max_load()
                );
            }
        }
    }

    #[test]
    fn roundtrip_normal_read_all_schemes() {
        let rs: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
        for scheme in all_schemes(rs) {
            let dps = scheme.data_per_stripe();
            let data = sample_elements(2 * dps, 8);
            let mut fetched = HashMap::new();
            for s in 0..2u64 {
                let refs: Vec<&[u8]> = data[s as usize * dps..(s as usize + 1) * dps]
                    .iter()
                    .map(|v| v.as_slice())
                    .collect();
                let img = scheme.encode_stripe(s, &refs);
                for (loc, bytes) in img.iter() {
                    fetched.insert(loc, bytes.to_vec());
                }
            }
            let start = 3u64;
            let count = dps; // spans two stripes
            let got = scheme
                .assemble_read(start, count, &fetched, ReadCtx::default())
                .unwrap();
            for (i, g) in got.iter().enumerate() {
                assert_eq!(g, &data[start as usize + i], "{} elem {i}", scheme.name());
            }
        }
    }

    #[test]
    fn degraded_read_reconstructs_lost_elements() {
        let lrc: Arc<dyn CandidateCode> = Arc::new(LrcCode::new(6, 2, 2));
        for scheme in all_schemes(lrc) {
            let dps = scheme.data_per_stripe();
            let data = sample_elements(2 * dps, 8);
            // Encode two stripes; keep a full map, then drop failed disk.
            let mut all = HashMap::new();
            for s in 0..2u64 {
                let refs: Vec<&[u8]> = data[s as usize * dps..(s as usize + 1) * dps]
                    .iter()
                    .map(|v| v.as_slice())
                    .collect();
                for (loc, bytes) in scheme.encode_stripe(s, &refs).iter() {
                    all.insert(loc, bytes.to_vec());
                }
            }
            for failed in 0..scheme.n_disks() {
                let start = 1u64;
                let count = (dps - 1).min(14);
                let plan = scheme.degraded_read_plan(start, count, &[failed]);
                assert!(
                    plan.unreadable.is_empty(),
                    "{} disk {failed}",
                    scheme.name()
                );
                // Execute the plan against surviving disks only.
                let fetched: HashMap<Loc, Vec<u8>> = plan
                    .fetches
                    .iter()
                    .map(|f| {
                        assert_ne!(f.loc.disk, failed, "plan reads failed disk");
                        (f.loc, all[&f.loc].clone())
                    })
                    .collect();
                let got = scheme
                    .assemble_read(start, count, &fetched, ReadCtx::default())
                    .unwrap();
                for (i, g) in got.iter().enumerate() {
                    assert_eq!(
                        g,
                        &data[start as usize + i],
                        "{} failed={failed} elem {i}",
                        scheme.name()
                    );
                }
            }
        }
    }

    #[test]
    fn degraded_cost_lrc_below_rs() {
        // LRC's raison d'être (and preserved by EC-FRM): repairing a lost
        // element costs k/l reads instead of k.
        let rs: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
        let lrc: Arc<dyn CandidateCode> = Arc::new(LrcCode::new(6, 2, 2));
        let rs_scheme = form(rs, LayoutKind::EcFrm);
        let lrc_scheme = form(lrc, LayoutKind::EcFrm);
        let mut rs_cost = 0.0;
        let mut lrc_cost = 0.0;
        let mut cases = 0;
        for start in 0..20u64 {
            for failed in 0..9 {
                let p = rs_scheme.degraded_read_plan(start, 10, &[failed]);
                rs_cost += p.cost();
                cases += 1;
            }
        }
        rs_cost /= cases as f64;
        let mut cases = 0;
        for start in 0..20u64 {
            for failed in 0..10 {
                let p = lrc_scheme.degraded_read_plan(start, 10, &[failed]);
                lrc_cost += p.cost();
                cases += 1;
            }
        }
        lrc_cost /= cases as f64;
        assert!(
            lrc_cost < rs_cost,
            "LRC degraded cost {lrc_cost} should be below RS {rs_cost}"
        );
    }

    #[test]
    fn ecfrm_preserves_fault_tolerance_rs() {
        // §IV-C: EC-FRM-RS(6,3) tolerates any 3 disk failures, like RS.
        let rs: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
        for scheme in all_schemes(rs) {
            assert!(
                scheme.verify_disk_tolerance(3, 9),
                "{} must tolerate any 3 disks",
                scheme.name()
            );
            assert!(
                !scheme.verify_disk_tolerance(4, 9),
                "{} cannot tolerate any 4 disks (MDS limit)",
                scheme.name()
            );
        }
    }

    #[test]
    fn ecfrm_preserves_fault_tolerance_lrc() {
        let lrc: Arc<dyn CandidateCode> = Arc::new(LrcCode::new(6, 2, 2));
        for scheme in all_schemes(lrc) {
            assert!(
                scheme.verify_disk_tolerance(3, 10),
                "{} must tolerate any 3 disks",
                scheme.name()
            );
        }
    }

    #[test]
    fn ecfrm_preserves_fault_tolerance_xor() {
        let xor: Arc<dyn CandidateCode> = Arc::new(XorCode::new(4));
        for scheme in all_schemes(xor) {
            assert!(scheme.verify_disk_tolerance(1, 5), "{}", scheme.name());
            assert!(!scheme.verify_disk_tolerance(2, 5), "{}", scheme.name());
        }
    }

    #[test]
    fn krotated_form_roundtrips_and_sits_between() {
        let rs: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
        let scheme = form(rs.clone(), LayoutKind::KRotated);
        assert_eq!(scheme.name(), "KROTATED-RS(6,3)");
        // Fault tolerance preserved (stripe period = n for the shift).
        assert!(scheme.verify_disk_tolerance(3, 9));
        // Roundtrip with a failure.
        let dps = scheme.data_per_stripe();
        let data = sample_elements(12 * dps, 8);
        let mut all = HashMap::new();
        for s in 0..12u64 {
            let refs: Vec<&[u8]> = data[s as usize * dps..(s as usize + 1) * dps]
                .iter()
                .map(|v| v.as_slice())
                .collect();
            for (loc, bytes) in scheme.encode_stripe(s, &refs).iter() {
                all.insert(loc, bytes.to_vec());
            }
        }
        let plan = scheme.degraded_read_plan(3, 20, &[4]);
        let fetched: HashMap<Loc, Vec<u8>> = plan
            .fetches
            .iter()
            .map(|f| (f.loc, all[&f.loc].clone()))
            .collect();
        let got = scheme
            .assemble_read(3, 20, &fetched, ReadCtx::default())
            .unwrap();
        for (i, g) in got.iter().enumerate() {
            assert_eq!(g, &data[3 + i]);
        }
        // Normal-read balance: strictly better than standard on average,
        // no better than EC-FRM.
        let std = form(rs.clone(), LayoutKind::Standard);
        let ec = form(rs, LayoutKind::EcFrm);
        let mut sum = [0usize; 3];
        for start in 0..60u64 {
            for size in 1..=20usize {
                sum[0] += std.normal_read_plan(start, size).max_load();
                sum[1] += scheme.normal_read_plan(start, size).max_load();
                sum[2] += ec.normal_read_plan(start, size).max_load();
            }
        }
        assert!(sum[1] < sum[0], "k-rotation beats standard: {sum:?}");
        assert!(
            sum[2] <= sum[1],
            "EC-FRM at least matches k-rotation: {sum:?}"
        );
    }

    #[test]
    fn multi_failure_degraded_plans_execute_correctly() {
        // (6,2,2) LRC tolerates any 3 disks; plans must route around all
        // of them and assembly must restore every element.
        let lrc: Arc<dyn CandidateCode> = Arc::new(LrcCode::new(6, 2, 2));
        let scheme = form(lrc, LayoutKind::EcFrm);
        let dps = scheme.data_per_stripe();
        let data = sample_elements(2 * dps, 8);
        let mut all = HashMap::new();
        for s in 0..2u64 {
            let refs: Vec<&[u8]> = data[s as usize * dps..(s as usize + 1) * dps]
                .iter()
                .map(|v| v.as_slice())
                .collect();
            for (loc, bytes) in scheme.encode_stripe(s, &refs).iter() {
                all.insert(loc, bytes.to_vec());
            }
        }
        for failed in [[0usize, 1, 2], [3, 6, 9], [2, 5, 8], [0, 4, 9]] {
            let plan = scheme.degraded_read_plan(2, 20, &failed);
            assert!(plan.unreadable.is_empty(), "failed {failed:?}");
            for f in &plan.fetches {
                assert!(!failed.contains(&f.loc.disk), "plan uses downed disk");
            }
            let fetched: HashMap<Loc, Vec<u8>> = plan
                .fetches
                .iter()
                .map(|f| (f.loc, all[&f.loc].clone()))
                .collect();
            let got = scheme
                .assemble_read(2, 20, &fetched, ReadCtx::default())
                .unwrap();
            for (i, g) in got.iter().enumerate() {
                assert_eq!(g, &data[2 + i], "failed {failed:?} elem {i}");
            }
        }
    }

    #[test]
    fn degraded_plan_with_multiple_failures_uses_joint_erasure_set() {
        // Two failures in the SAME local group force the global fallback;
        // the spec must not pretend the second failure is available.
        let lrc: Arc<dyn CandidateCode> = Arc::new(LrcCode::new(6, 2, 2));
        let scheme = form(lrc, LayoutKind::Standard);
        // Disks 0 and 1 are data positions 0 and 1 (same local group).
        let plan = scheme.degraded_read_plan(0, 2, &[0, 1]);
        assert!(plan.unreadable.is_empty());
        // Repairs must involve global parities (disks 8/9), since local
        // group 0 has two holes.
        assert!(
            plan.fetches.iter().any(|f| f.loc.disk >= 8),
            "expected global-parity reads: {:?}",
            plan.fetches
        );
    }

    #[test]
    fn cached_assembly_matches_uncached() {
        let rs: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
        let scheme = form(rs, LayoutKind::EcFrm);
        let dps = scheme.data_per_stripe();
        let data = sample_elements(dps, 8);
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let all: HashMap<Loc, Vec<u8>> = scheme
            .encode_stripe(0, &refs)
            .iter()
            .map(|(l, b)| (l, b.to_vec()))
            .collect();
        let cache = ecfrm_codes::DecoderCache::new(scheme.code().generator().clone());
        for failed in 0..scheme.n_disks() {
            let plan = scheme.degraded_read_plan(0, dps, &[failed]);
            let fetched: HashMap<Loc, Vec<u8>> = plan
                .fetches
                .iter()
                .map(|f| (f.loc, all[&f.loc].clone()))
                .collect();
            let direct = scheme
                .assemble_read(0, dps, &fetched, ReadCtx::default())
                .unwrap();
            let cached = scheme
                .assemble_read(0, dps, &fetched, ReadCtx::new().with_cache(&cache))
                .unwrap();
            assert_eq!(direct, cached, "failed={failed}");
        }
        assert!(cache.stats().1 > 0);
    }

    #[test]
    fn degraded_read_prefers_helpers_in_the_lost_disks_rack() {
        // Standard RS(6,3): position p sits on disk p, so repairing
        // element 0 (disk 0) may read any 6 of disks 1..=8. Put disks 1
        // and 2 in a foreign rack: a rack-aware plan must leave them
        // alone, the domain-blind default reads them first.
        let rs: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
        let rack_aware = Scheme::builder(rs.clone())
            .layout(LayoutKind::Standard)
            .domains(DomainMap::from_labels(&[0, 1, 1, 0, 0, 0, 0, 0, 0]))
            .build();
        let plan = rack_aware.degraded_read_plan(0, 1, &[0]);
        assert!(plan.unreadable.is_empty());
        assert!(
            plan.fetches.iter().all(|f| f.loc.disk >= 3),
            "intra-rack helpers suffice: {:?}",
            plan.fetches
        );
        let blind = form(rs, LayoutKind::Standard);
        let plan = blind.degraded_read_plan(0, 1, &[0]);
        assert!(
            plan.fetches.iter().any(|f| f.loc.disk == 1),
            "domain-blind ranking starts at the lowest disk"
        );
    }

    #[test]
    fn racks_builder_splits_contiguously() {
        let rs: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
        let scheme = Scheme::builder(rs)
            .layout(LayoutKind::EcFrm)
            .racks(3)
            .build();
        assert_eq!(scheme.domains().n_domains(), 3);
        assert!(scheme.domains().same_domain(0, 2));
        assert!(!scheme.domains().same_domain(2, 3));
    }

    #[test]
    fn unreadable_reported_beyond_tolerance() {
        let xor: Arc<dyn CandidateCode> = Arc::new(XorCode::new(4));
        let scheme = form(xor, LayoutKind::Standard);
        // Two failed disks exceed XOR tolerance; requested elements on
        // them are unreadable.
        let plan = scheme.degraded_read_plan(0, 4, &[0, 1]);
        assert_eq!(plan.unreadable.len(), 2);
    }

    #[test]
    fn empty_read_plans() {
        let rs: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
        let scheme = form(rs, LayoutKind::EcFrm);
        let plan = scheme.normal_read_plan(5, 0);
        assert_eq!(plan.total_fetched(), 0);
        let fetched = HashMap::new();
        assert!(scheme
            .assemble_read(5, 0, &fetched, ReadCtx::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn recorder_ctx_counts_decodes() {
        let rs: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
        let scheme = form(rs, LayoutKind::EcFrm);
        let dps = scheme.data_per_stripe();
        let data = sample_elements(dps, 8);
        let refs: Vec<&[u8]> = data.iter().map(|v| v.as_slice()).collect();
        let all: HashMap<Loc, Vec<u8>> = scheme
            .encode_stripe(0, &refs)
            .iter()
            .map(|(l, b)| (l, b.to_vec()))
            .collect();
        let plan = scheme.degraded_read_plan(0, dps, &[0]);
        let fetched: HashMap<Loc, Vec<u8>> = plan
            .fetches
            .iter()
            .map(|f| (f.loc, all[&f.loc].clone()))
            .collect();
        let rec = ecfrm_obs::Recorder::new();
        scheme
            .assemble_read(0, dps, &fetched, ReadCtx::new().with_recorder(&rec))
            .unwrap();
        let snap = rec.snapshot();
        let decoded = snap.counters["decoded_elements"];
        assert!(decoded > 0, "degraded read must reconstruct something");
        assert_eq!(snap.histograms["decode_us"].count, decoded);
    }

    #[test]
    #[should_panic]
    fn mismatched_layout_rejected() {
        let rs: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
        let wrong = Arc::new(StandardLayout::new(10, 6));
        Scheme::new(rs, wrong);
    }
}

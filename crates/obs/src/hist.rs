//! Fixed-bucket log-scale histogram with percentile readout.
//!
//! The bucket layout is the HDR-histogram idea cut to its core: values
//! below [`SUB_BUCKETS`] get exact unit-width buckets; every power-of-two
//! octave above that is split into [`SUB_BUCKETS`] linear sub-buckets.
//! With 4 sub-buckets the relative quantisation error is bounded by
//! 1/4 = 25 % (the width of a sub-bucket over its lower bound), which is
//! plenty for latency percentiles, and the whole `u64` range fits in
//! [`BUCKETS`] = 252 slots — small enough to snapshot by copying.
//!
//! Recording is a single relaxed `fetch_add` on the bucket plus relaxed
//! updates of count/sum/min/max: no locks, no allocation, safe to call
//! from every disk worker thread at once.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// log2 of the number of linear sub-buckets per octave.
const SUB_BITS: u32 = 2;
/// Linear sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range.
pub const BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// Bucket index a value lands in.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let sub = ((v >> (msb - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        SUB_BUCKETS + (msb - SUB_BITS) as usize * SUB_BUCKETS + sub
    }
}

/// Smallest value that lands in bucket `i` (the bucket's inclusive
/// lower bound).
pub fn bucket_lower_bound(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        i as u64
    } else {
        let msb = SUB_BITS + ((i - SUB_BUCKETS) / SUB_BUCKETS) as u32;
        let sub = ((i - SUB_BUCKETS) % SUB_BUCKETS) as u64;
        (1u64 << msb) + (sub << (msb - SUB_BITS))
    }
}

/// Largest value that lands in bucket `i` (inclusive upper bound).
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_lower_bound(i + 1) - 1
    }
}

#[derive(Debug)]
struct Core {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A cheap-to-clone handle to a shared log-scale histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<Core>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Fresh, empty histogram.
    pub fn new() -> Self {
        Self {
            core: Arc::new(Core {
                buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        let c = &self.core;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in microseconds (the workspace's latency unit).
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.core;
        HistogramSnapshot {
            buckets: c
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: c.count.load(Ordering::Relaxed),
            sum: c.sum.load(Ordering::Relaxed),
            min: c.min.load(Ordering::Relaxed),
            max: c.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable snapshot of a [`Histogram`], with percentile readout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: an upper-bound estimate from
    /// the bucket the q-th observation falls in, clamped to the exact
    /// recorded `max` (so `percentile(1.0) == max`). Returns 0 when
    /// empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper_bound(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// One-line human summary, e.g.
    /// `n=512 mean=84.2us p50=78us p95=140us p99=190us max=212us`.
    pub fn summary(&self, unit: &str) -> String {
        if self.count == 0 {
            return "n=0".to_string();
        }
        format!(
            "n={} mean={:.1}{u} p50={}{u} p95={}{u} p99={}{u} max={}{u}",
            self.count,
            self.mean(),
            self.p50(),
            self.p95(),
            self.p99(),
            self.max,
            u = unit,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
            assert_eq!(bucket_upper_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_are_contiguous_and_ordered() {
        // Every bucket's lower bound is exactly one past the previous
        // bucket's upper bound: no gaps, no overlaps.
        for i in 1..BUCKETS - 1 {
            assert_eq!(
                bucket_lower_bound(i),
                bucket_upper_bound(i - 1) + 1,
                "gap/overlap at bucket {i}"
            );
        }
    }

    #[test]
    fn index_and_bounds_are_inverse() {
        // The lower and upper bound of every bucket index back to it,
        // including across octave boundaries.
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_lower_bound(i)), i);
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
        }
        // Spot-check octave edges.
        for v in [3u64, 4, 7, 8, 15, 16, 1023, 1024, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lower_bound(i) <= v);
            assert!(v <= bucket_upper_bound(i));
        }
    }

    #[test]
    fn relative_error_bounded_by_sub_bucket_width() {
        // Upper bound of a bucket overshoots its lower bound by at most
        // 1/SUB_BUCKETS (25 %) — the promised quantisation error.
        for i in SUB_BUCKETS..BUCKETS - 1 {
            let lo = bucket_lower_bound(i) as f64;
            let hi = bucket_upper_bound(i) as f64;
            assert!((hi - lo) / lo <= 1.0 / SUB_BUCKETS as f64 + 1e-12);
        }
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max, 1000);
        // Upper-bound estimates: within one sub-bucket (25 %) above the
        // exact quantile, never below it.
        for (q, exact) in [(0.50, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let got = s.percentile(q) as f64;
            assert!(got >= exact * 0.999, "p{q} too low: {got} < {exact}");
            assert!(got <= exact * 1.25 + 1.0, "p{q} too high: {got} vs {exact}");
        }
        assert_eq!(s.percentile(1.0), 1000);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn single_value_percentiles_are_exact() {
        let h = Histogram::new();
        h.record(42);
        let s = h.snapshot();
        assert_eq!(s.p50(), 42);
        assert_eq!(s.p99(), 42);
        assert_eq!(s.percentile(0.0), 42);
        assert_eq!(s.max, 42);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.summary("us"), "n=0");
    }

    #[test]
    fn duration_recording_uses_micros() {
        let h = Histogram::new();
        h.record_duration(Duration::from_millis(3));
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.max, 3000);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for v in 0..1000u64 {
                        h.record(t * 1000 + v);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 4000);
    }
}

//! Per-disk load accounting.
//!
//! The paper's central quantity: read speed is bounded by the most-loaded
//! disk, so what matters per layout is not *how much* was read but *how
//! evenly*. A [`DiskBoard`] keeps one `(elements, bytes)` atomic pair per
//! disk; its snapshot reports max, mean, and the max/mean imbalance ratio
//! (1.0 = perfectly even, higher = hot disk).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fixed-size per-disk load tallies behind a cheap-clone handle.
#[derive(Debug, Clone)]
pub struct DiskBoard {
    slots: Arc<Vec<(AtomicU64, AtomicU64)>>,
}

impl DiskBoard {
    /// A board for `n_disks` disks, all tallies zero.
    pub fn new(n_disks: usize) -> Self {
        Self {
            slots: Arc::new(
                (0..n_disks)
                    .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
                    .collect(),
            ),
        }
    }

    /// Number of disk slots.
    pub fn n_disks(&self) -> usize {
        self.slots.len()
    }

    /// Credit `elements` element reads totalling `bytes` to `disk`.
    /// Out-of-range disks are ignored (a board never panics a hot path).
    pub fn record(&self, disk: usize, elements: u64, bytes: u64) {
        if let Some((e, b)) = self.slots.get(disk) {
            e.fetch_add(elements, Ordering::Relaxed);
            b.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Point-in-time copy of all tallies.
    pub fn snapshot(&self) -> DiskBoardSnapshot {
        DiskBoardSnapshot {
            elements: self
                .slots
                .iter()
                .map(|(e, _)| e.load(Ordering::Relaxed))
                .collect(),
            bytes: self
                .slots
                .iter()
                .map(|(_, b)| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Immutable copy of a [`DiskBoard`], with imbalance readout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskBoardSnapshot {
    /// Element reads served per disk.
    pub elements: Vec<u64>,
    /// Bytes served per disk.
    pub bytes: Vec<u64>,
}

impl DiskBoardSnapshot {
    /// Element count on the most-loaded disk.
    pub fn max_elements(&self) -> u64 {
        self.elements.iter().copied().max().unwrap_or(0)
    }

    /// Mean element count across disks (0.0 for an empty board).
    pub fn mean_elements(&self) -> f64 {
        if self.elements.is_empty() {
            0.0
        } else {
            self.elements.iter().sum::<u64>() as f64 / self.elements.len() as f64
        }
    }

    /// Load-imbalance ratio max/mean: 1.0 is perfectly even, higher
    /// means a hot disk. 0.0 when no load was recorded.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_elements();
        if mean == 0.0 {
            0.0
        } else {
            self.max_elements() as f64 / mean
        }
    }

    /// Total element reads across all disks.
    pub fn total_elements(&self) -> u64 {
        self.elements.iter().sum()
    }

    /// Aligned per-disk table with a proportional bar per row, plus a
    /// max/mean/imbalance footer.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let max = self.max_elements();
        out.push_str(&format!(
            "  {:<6} {:>10} {:>14}  {}\n",
            "disk", "elements", "bytes", "load"
        ));
        for (d, (e, b)) in self.elements.iter().zip(&self.bytes).enumerate() {
            let bar_len = if max == 0 {
                0
            } else {
                ((*e as f64 / max as f64) * 40.0).round() as usize
            };
            out.push_str(&format!(
                "  {d:<6} {e:>10} {b:>14}  {}\n",
                "#".repeat(bar_len)
            ));
        }
        out.push_str(&format!(
            "  max {} / mean {:.1} -> imbalance {:.3}\n",
            max,
            self.mean_elements(),
            self.imbalance()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_back() {
        let b = DiskBoard::new(3);
        b.record(0, 2, 200);
        b.record(2, 4, 400);
        b.record(0, 1, 100);
        let s = b.snapshot();
        assert_eq!(s.elements, vec![3, 0, 4]);
        assert_eq!(s.bytes, vec![300, 0, 400]);
        assert_eq!(s.max_elements(), 4);
        assert_eq!(s.total_elements(), 7);
        assert!((s.mean_elements() - 7.0 / 3.0).abs() < 1e-12);
        assert!((s.imbalance() - 4.0 / (7.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_disk_is_ignored() {
        let b = DiskBoard::new(2);
        b.record(5, 1, 1);
        assert_eq!(b.snapshot().total_elements(), 0);
    }

    #[test]
    fn even_load_has_imbalance_one() {
        let b = DiskBoard::new(4);
        for d in 0..4 {
            b.record(d, 5, 50);
        }
        let s = b.snapshot();
        assert!((s.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_board_imbalance_is_zero() {
        assert_eq!(DiskBoard::new(3).snapshot().imbalance(), 0.0);
        assert_eq!(DiskBoard::new(0).snapshot().imbalance(), 0.0);
    }

    #[test]
    fn table_lists_every_disk() {
        let b = DiskBoard::new(2);
        b.record(0, 3, 30);
        let t = b.snapshot().table();
        assert!(t.contains("imbalance"));
        assert_eq!(t.lines().count(), 4); // header + 2 disks + footer
    }
}

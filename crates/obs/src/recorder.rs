//! The [`Recorder`] registry and its scalar instruments.
//!
//! A `Recorder` is the handle a subsystem threads through its stack:
//! cloning it clones one `Arc`. Instruments are registered by name on
//! first use; the lookup takes a short mutex hold, but the returned
//! [`Counter`]/[`Gauge`]/[`Histogram`]/[`DiskBoard`] handles are
//! lock-free, so hot paths resolve their instruments once (at
//! construction time) and then only touch atomics.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use ecfrm_util::Mutex;

use crate::board::{DiskBoard, DiskBoardSnapshot};
use crate::hist::{Histogram, HistogramSnapshot};
use crate::json;

/// Monotonically increasing counter behind a cheap-clone handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Signed point-in-time value (queue depths, open connections).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    boards: Mutex<BTreeMap<String, DiskBoard>>,
}

/// A cheap-to-clone handle to a metrics registry.
///
/// Every `clone` shares the same registry, so a `Recorder` can be handed
/// to each layer of the stack and snapshotted once at the top.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    registry: Arc<Registry>,
}

impl Recorder {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.registry.counters.lock();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.registry.gauges.lock();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.registry.histograms.lock();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The disk board named `name`, registering it on first use with
    /// `n_disks` slots (an existing board is returned as-is; boards are
    /// fixed-size).
    pub fn disk_board(&self, name: &str, n_disks: usize) -> DiskBoard {
        let mut map = self.registry.boards.lock();
        map.entry(name.to_string())
            .or_insert_with(|| DiskBoard::new(n_disks))
            .clone()
    }

    /// Point-in-time readout of every registered instrument.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .registry
                .counters
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .registry
                .gauges
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .registry
                .histograms
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            boards: self
                .registry
                .boards
                .lock()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Point-in-time readout of a [`Recorder`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Disk-board snapshots by name.
    pub boards: BTreeMap<String, DiskBoardSnapshot>,
}

impl Snapshot {
    /// True when nothing was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.boards.is_empty()
    }

    /// Flatten everything to `(name, u64)` pairs — the shape the wire
    /// protocol's `Stats` message carries. Histograms flatten to their
    /// `count`/`p50`/`p95`/`p99`/`max` (suffixed names); boards to
    /// per-disk element counts plus totals; gauges are clamped at zero.
    pub fn flatten(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        for (k, v) in &self.counters {
            out.push((k.clone(), *v));
        }
        for (k, v) in &self.gauges {
            out.push((k.clone(), (*v).max(0) as u64));
        }
        for (k, h) in &self.histograms {
            out.push((format!("{k}.count"), h.count));
            out.push((format!("{k}.p50"), h.p50()));
            out.push((format!("{k}.p95"), h.p95()));
            out.push((format!("{k}.p99"), h.p99()));
            out.push((format!("{k}.max"), h.max));
        }
        for (k, b) in &self.boards {
            for (d, (elems, bytes)) in b.elements.iter().zip(&b.bytes).enumerate() {
                out.push((format!("{k}.disk{d}.elements"), *elems));
                out.push((format!("{k}.disk{d}.bytes"), *bytes));
            }
        }
        out
    }

    /// Human-readable rendering: counters and gauges as aligned
    /// `name value` lines, each histogram as a one-line summary (values
    /// are microseconds by convention), each board as a per-disk table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0)
            .max(8);
        for (k, v) in &self.counters {
            out.push_str(&format!("{k:<width$} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{k:<width$} {v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!("{k}: {}\n", h.summary("us")));
        }
        for (k, b) in &self.boards {
            out.push_str(&format!("{k}:\n{}", b.table()));
        }
        out
    }

    /// Serialise to a JSON object (hand-rolled; the offline workspace
    /// carries no serde). Histograms become objects with
    /// `count/mean/p50/p95/p99/max`; boards become objects with
    /// per-disk arrays plus `max/mean/imbalance`.
    pub fn to_json(&self) -> String {
        let mut root = Vec::new();
        let counters: Vec<(String, String)> = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.to_string()))
            .collect();
        root.push(("counters".to_string(), json::object(&counters)));
        let gauges: Vec<(String, String)> = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), v.to_string()))
            .collect();
        root.push(("gauges".to_string(), json::object(&gauges)));
        let hists: Vec<(String, String)> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let fields = vec![
                    ("count".to_string(), h.count.to_string()),
                    ("mean".to_string(), json::number(h.mean())),
                    ("p50".to_string(), h.p50().to_string()),
                    ("p95".to_string(), h.p95().to_string()),
                    ("p99".to_string(), h.p99().to_string()),
                    ("max".to_string(), h.max.to_string()),
                ];
                (k.clone(), json::object(&fields))
            })
            .collect();
        root.push(("histograms".to_string(), json::object(&hists)));
        let boards: Vec<(String, String)> = self
            .boards
            .iter()
            .map(|(k, b)| {
                let fields = vec![
                    ("elements".to_string(), json::array_u64(&b.elements)),
                    ("bytes".to_string(), json::array_u64(&b.bytes)),
                    ("max".to_string(), b.max_elements().to_string()),
                    ("mean".to_string(), json::number(b.mean_elements())),
                    ("imbalance".to_string(), json::number(b.imbalance())),
                ];
                (k.clone(), json::object(&fields))
            })
            .collect();
        root.push(("boards".to_string(), json::object(&boards)));
        json::object(&root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Recorder::new();
        let c = r.counter("reads");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("reads").get(), 5);
        let g = r.gauge("depth");
        g.set(7);
        g.add(-2);
        assert_eq!(r.gauge("depth").get(), 5);
    }

    #[test]
    fn clones_share_the_registry() {
        let r = Recorder::new();
        let r2 = r.clone();
        r.counter("x").add(3);
        r2.counter("x").add(4);
        assert_eq!(r.snapshot().counters["x"], 7);
    }

    #[test]
    fn snapshot_collects_everything() {
        let r = Recorder::new();
        r.counter("c").inc();
        r.gauge("g").set(-1);
        r.histogram("h").record(10);
        r.disk_board("d", 2).record(1, 3, 300);
        let s = r.snapshot();
        assert_eq!(s.counters["c"], 1);
        assert_eq!(s.gauges["g"], -1);
        assert_eq!(s.histograms["h"].count, 1);
        assert_eq!(s.boards["d"].elements, vec![0, 3]);
        assert!(!s.is_empty());
        assert!(Recorder::new().snapshot().is_empty());
    }

    #[test]
    fn flatten_has_histogram_percentiles_and_board_disks() {
        let r = Recorder::new();
        r.counter("reads").add(2);
        r.histogram("lat_us").record(100);
        r.disk_board("load", 2).record(0, 1, 50);
        let flat = r.snapshot().flatten();
        let get = |name: &str| flat.iter().find(|(k, _)| k == name).map(|(_, v)| *v);
        assert_eq!(get("reads"), Some(2));
        assert_eq!(get("lat_us.count"), Some(1));
        assert!(get("lat_us.p99").unwrap() >= 100);
        assert_eq!(get("load.disk0.elements"), Some(1));
        assert_eq!(get("load.disk1.bytes"), Some(0));
    }

    #[test]
    fn render_and_json_are_well_formed() {
        let r = Recorder::new();
        r.counter("reads").add(2);
        r.histogram("lat_us").record(100);
        r.disk_board("load", 2).record(0, 1, 50);
        let s = r.snapshot();
        let text = s.render();
        assert!(text.contains("reads"));
        assert!(text.contains("p99"));
        let js = s.to_json();
        assert!(js.starts_with('{') && js.ends_with('}'));
        assert!(js.contains("\"counters\""));
        assert!(js.contains("\"reads\":2"));
        assert!(js.contains("\"imbalance\""));
    }
}

//! Minimal JSON emission helpers.
//!
//! The workspace is offline and carries no serde; everything we emit is
//! flat metric data (string keys, numbers, arrays of numbers), so a few
//! composable helpers cover it. Values passed to [`object`] must already
//! be valid JSON fragments — numbers from [`number`], nested objects
//! from [`object`], or arrays from [`array_u64`].

/// Escape a string for use as a JSON string literal (quotes included).
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float as a JSON number (finite values only; non-finite
/// values become `null`, which JSON cannot represent as a number).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Trim to a stable, compact form; f64 round-trips are overkill
        // for metric readouts.
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

/// A JSON array of unsigned integers.
pub fn array_u64(xs: &[u64]) -> String {
    let body: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", body.join(","))
}

/// A JSON object from `(key, already-serialised-value)` pairs.
pub fn object(fields: &[(String, String)]) -> String {
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("{}:{}", string(k), v))
        .collect();
    format!("{{{}}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_strings() {
        assert_eq!(string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_and_arrays() {
        assert_eq!(number(1.5), "1.5000");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(array_u64(&[1, 2, 3]), "[1,2,3]");
        assert_eq!(array_u64(&[]), "[]");
    }

    #[test]
    fn objects_nest() {
        let inner = object(&[("a".to_string(), "1".to_string())]);
        let outer = object(&[("x".to_string(), inner)]);
        assert_eq!(outer, "{\"x\":{\"a\":1}}");
    }
}

//! Network transport counters.
//!
//! Incremented by remote disk clients (`ecfrm-net`) and snapshotted into
//! [`NetStats`] for reporting. These predate the [`Recorder`] registry
//! (they came in with the shard service) and keep their struct shape
//! because `ReadStats` embeds the snapshot per read; the store also
//! folds the same values into its registry as plain counters.
//!
//! [`Recorder`]: crate::Recorder

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe network transport counters.
#[derive(Debug, Default)]
pub struct NetCounters {
    /// Requests re-sent after an error or timeout.
    pub retries: AtomicU64,
    /// Hedge requests launched against a second connection.
    pub hedges: AtomicU64,
    /// Hedge requests whose response arrived before the primary's.
    pub hedge_wins: AtomicU64,
    /// Requests that hit their per-request deadline.
    pub timeouts: AtomicU64,
    /// Connections re-established after a transport error.
    pub reconnects: AtomicU64,
    /// Requests that exhausted every retry and returned failure.
    pub failed_requests: AtomicU64,
    /// Connections dropped instead of being returned for reuse, because
    /// an error or timeout left their framing state unknown.
    pub conns_discarded: AtomicU64,
}

impl NetCounters {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the current values.
    pub fn snapshot(&self) -> NetStats {
        NetStats {
            retries: self.retries.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            hedge_wins: self.hedge_wins.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
            failed_requests: self.failed_requests.load(Ordering::Relaxed),
            conns_discarded: self.conns_discarded.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of [`NetCounters`]. Subtraction gives the
/// delta over a window (e.g. one `get_range` call).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Requests re-sent after an error or timeout.
    pub retries: u64,
    /// Hedge requests launched against a second connection.
    pub hedges: u64,
    /// Hedge requests whose response arrived before the primary's.
    pub hedge_wins: u64,
    /// Requests that hit their per-request deadline.
    pub timeouts: u64,
    /// Connections re-established after a transport error.
    pub reconnects: u64,
    /// Requests that exhausted every retry and returned failure.
    pub failed_requests: u64,
    /// Connections dropped instead of being returned for reuse, because
    /// an error or timeout left their framing state unknown.
    pub conns_discarded: u64,
}

impl NetStats {
    /// True when every counter is zero (e.g. a purely local read).
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }

    /// Counter-wise sum.
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            retries: self.retries + other.retries,
            hedges: self.hedges + other.hedges,
            hedge_wins: self.hedge_wins + other.hedge_wins,
            timeouts: self.timeouts + other.timeouts,
            reconnects: self.reconnects + other.reconnects,
            failed_requests: self.failed_requests + other.failed_requests,
            conns_discarded: self.conns_discarded + other.conns_discarded,
        }
    }

    /// Counter-wise saturating difference (`self - earlier`), for
    /// windowed deltas across a single operation.
    pub fn since(&self, earlier: &Self) -> Self {
        Self {
            retries: self.retries.saturating_sub(earlier.retries),
            hedges: self.hedges.saturating_sub(earlier.hedges),
            hedge_wins: self.hedge_wins.saturating_sub(earlier.hedge_wins),
            timeouts: self.timeouts.saturating_sub(earlier.timeouts),
            reconnects: self.reconnects.saturating_sub(earlier.reconnects),
            failed_requests: self.failed_requests.saturating_sub(earlier.failed_requests),
            conns_discarded: self.conns_discarded.saturating_sub(earlier.conns_discarded),
        }
    }

    /// Fold this delta into a [`Recorder`](crate::Recorder)'s counters
    /// under `net.*` names, so transport activity shows up alongside
    /// the rest of a subsystem's metrics.
    pub fn record_into(&self, recorder: &crate::Recorder) {
        if self.is_zero() {
            return;
        }
        for (name, v) in [
            ("net.retries", self.retries),
            ("net.hedges", self.hedges),
            ("net.hedge_wins", self.hedge_wins),
            ("net.timeouts", self.timeouts),
            ("net.reconnects", self.reconnects),
            ("net.failed_requests", self.failed_requests),
            ("net.conns_discarded", self.conns_discarded),
        ] {
            if v > 0 {
                recorder.counter(name).add(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_counters_snapshot_merge_since() {
        let c = NetCounters::new();
        assert!(c.snapshot().is_zero());
        c.retries.fetch_add(3, Ordering::Relaxed);
        c.timeouts.fetch_add(1, Ordering::Relaxed);
        let a = c.snapshot();
        assert_eq!((a.retries, a.timeouts), (3, 1));
        c.hedges.fetch_add(2, Ordering::Relaxed);
        c.retries.fetch_add(1, Ordering::Relaxed);
        let b = c.snapshot();
        let d = b.since(&a);
        assert_eq!((d.retries, d.hedges, d.timeouts), (1, 2, 0));
        let m = a.merge(&d);
        assert_eq!(m, b);
    }

    #[test]
    fn record_into_folds_nonzero_counters() {
        let r = crate::Recorder::new();
        NetStats::default().record_into(&r);
        assert!(r.snapshot().counters.is_empty());
        let d = NetStats {
            retries: 2,
            timeouts: 1,
            ..Default::default()
        };
        d.record_into(&r);
        d.record_into(&r);
        let s = r.snapshot();
        assert_eq!(s.counters["net.retries"], 4);
        assert_eq!(s.counters["net.timeouts"], 2);
        assert!(!s.counters.contains_key("net.hedges"));
    }
}

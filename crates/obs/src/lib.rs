//! Lock-light observability substrate for the EC-FRM workspace.
//!
//! The paper's entire argument (§VI) is that read speed is set by the
//! *most-loaded* disk, so the one thing this codebase must be able to
//! show is per-disk load and the latency distribution it produces —
//! means hide exactly the tail the layout transformation is buying.
//! This crate provides the primitives every layer records into:
//!
//! * [`Counter`] / [`Gauge`] — single atomics behind a cheap-clone
//!   handle; `inc`/`add` are one relaxed `fetch_add`, no locks.
//! * [`Histogram`] — fixed-bucket log-scale (HDR-style: power-of-two
//!   octaves split into 4 linear sub-buckets, ≤ 25 % relative error)
//!   with p50/p95/p99/max readout. Recording is one atomic add into a
//!   fixed 252-slot table; no allocation, no lock.
//! * [`DiskBoard`] — per-disk element and byte totals, the direct
//!   observable behind the paper's max/mean load-imbalance metric.
//! * [`Recorder`] — a registry handing out the above by name. Cloning
//!   a `Recorder` clones an `Arc`; looking up an instrument takes a
//!   short mutex hold, after which the returned handle is lock-free,
//!   so hot paths resolve their instruments once and then only touch
//!   atomics.
//! * [`Snapshot`] — a point-in-time readout of a whole registry, with
//!   a human table ([`Snapshot::render`]), a flat `(name, u64)` list
//!   for the wire protocol ([`Snapshot::flatten`]), and a hand-rolled
//!   JSON emitter ([`Snapshot::to_json`]; the workspace is offline and
//!   carries no serde).
//!
//! [`NetCounters`]/[`NetStats`] — the transport counters the remote
//! disk client increments — live here too, re-exported by `ecfrm-sim`
//! for compatibility with their original home.

#![warn(missing_docs)]

pub mod board;
pub mod hist;
pub mod json;
pub mod net;
pub mod recorder;

pub use board::{DiskBoard, DiskBoardSnapshot};
pub use hist::{Histogram, HistogramSnapshot};
pub use net::{NetCounters, NetStats};
pub use recorder::{Counter, Gauge, Recorder, Snapshot};

//! Criterion bench for Figure 8: normal-read planning + array timing for
//! every (code, form, parameter) cell of the paper's Table I.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ecfrm_bench::experiment::{run_normal, ExperimentConfig};
use ecfrm_bench::params::{lrc_params, lrc_schemes, rs_params, rs_schemes};

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        trials_normal: 200,
        address_space: 3_000,
        ..ExperimentConfig::default()
    }
}

fn bench_fig8a(c: &mut Criterion) {
    let cfg = cfg();
    let mut g = c.benchmark_group("fig8a_normal_read_rs");
    for (k, m) in rs_params() {
        for scheme in rs_schemes(k, m) {
            g.bench_with_input(
                BenchmarkId::new(scheme.name(), format!("({k},{m})")),
                &scheme,
                |b, s| b.iter(|| run_normal(s, &cfg).speed_mb_s),
            );
        }
    }
    g.finish();
}

fn bench_fig8b(c: &mut Criterion) {
    let cfg = cfg();
    let mut g = c.benchmark_group("fig8b_normal_read_lrc");
    for (k, l, m) in lrc_params() {
        for scheme in lrc_schemes(k, l, m) {
            g.bench_with_input(
                BenchmarkId::new(scheme.name(), format!("({k},{l},{m})")),
                &scheme,
                |b, s| b.iter(|| run_normal(s, &cfg).speed_mb_s),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig8a, bench_fig8b);
criterion_main!(benches);

//! Criterion bench for Figure 8: normal-read planning + array timing for
//! every (code, form, parameter) cell of the paper's Table I — plus a
//! loopback variant where reads cross real TCP sockets.

use ecfrm_bench::harness::{BenchmarkId, Criterion, Throughput};
use ecfrm_bench::{criterion_group, criterion_main};

use ecfrm_bench::experiment::{run_normal, ExperimentConfig};
use ecfrm_bench::params::{lrc_params, lrc_schemes, rs_params, rs_schemes};

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        trials_normal: 200,
        address_space: 3_000,
        ..ExperimentConfig::default()
    }
}

fn bench_fig8a(c: &mut Criterion) {
    let cfg = cfg();
    let mut g = c.benchmark_group("fig8a_normal_read_rs");
    for (k, m) in rs_params() {
        for scheme in rs_schemes(k, m) {
            g.bench_with_input(
                BenchmarkId::new(scheme.name(), format!("({k},{m})")),
                &scheme,
                |b, s| b.iter(|| run_normal(s, &cfg).speed_mb_s),
            );
        }
    }
    g.finish();
}

fn bench_fig8b(c: &mut Criterion) {
    let cfg = cfg();
    let mut g = c.benchmark_group("fig8b_normal_read_lrc");
    for (k, l, m) in lrc_params() {
        for scheme in lrc_schemes(k, l, m) {
            g.bench_with_input(
                BenchmarkId::new(scheme.name(), format!("({k},{l},{m})")),
                &scheme,
                |b, s| b.iter(|| run_normal(s, &cfg).speed_mb_s),
            );
        }
    }
    g.finish();
}

/// Normal reads over real loopback TCP: `ObjectStore` backed by
/// `RemoteDisk` clients against in-process shard servers. Measures the
/// wire path (framing + syscalls + connection pooling) that the
/// simulated benches above deliberately exclude.
fn bench_loopback_net(c: &mut Criterion) {
    use ecfrm_net::Cluster;
    use ecfrm_sim::ThreadedArray;
    use ecfrm_store::ObjectStore;
    use ecfrm_util::Rng;

    const ELEMENT: usize = 4096;
    const READ_ELEMS: u64 = 8;

    let mut g = c.benchmark_group("normal_read_loopback_net");
    g.throughput(Throughput::Bytes(READ_ELEMS * ELEMENT as u64));
    for scheme in lrc_schemes(6, 2, 2) {
        let cluster = Cluster::spawn(scheme.n_disks()).expect("loopback cluster");
        let store = ObjectStore::with_array(
            scheme.clone(),
            ELEMENT,
            ThreadedArray::from_backends(cluster.backends()),
        );
        let total: usize = 64 * scheme.data_per_stripe() * ELEMENT;
        let data: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
        store.put("bench", &data).expect("ingest");
        store.flush();

        let mut rng = Rng::seed_from_u64(42);
        let span = total as u64 - READ_ELEMS * ELEMENT as u64;
        g.bench_with_input(
            BenchmarkId::new(scheme.name(), "8-element reads"),
            &store,
            |b, s| {
                b.iter(|| {
                    let start = rng.random_range(0..span);
                    s.get_range("bench", start, READ_ELEMS * ELEMENT as u64)
                        .expect("read over loopback")
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig8a, bench_fig8b, bench_loopback_net);
criterion_main!(benches);

//! Criterion bench: the GF region kernels (the workspace's GF-Complete
//! substitute) — multiply-accumulate and XOR over storage-sized buffers.

use ecfrm_bench::harness::{BenchmarkId, Criterion, Throughput};
use ecfrm_bench::{criterion_group, criterion_main};

use ecfrm_gf::region::{dot_region, dot_region_multi, mul_add_region, mul_region, xor_region};

fn buf(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 131 + seed as usize * 7 + 1) % 256) as u8)
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf_region_kernels");
    for len in [4 * 1024usize, 64 * 1024, 1024 * 1024] {
        let src = buf(len, 1);
        let mut dst = buf(len, 2);
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_with_input(BenchmarkId::new("xor", len), &len, |b, _| {
            b.iter(|| xor_region(&mut dst, &src))
        });
        g.bench_with_input(BenchmarkId::new("mul_c", len), &len, |b, _| {
            b.iter(|| mul_region(0x1D, &src, &mut dst))
        });
        g.bench_with_input(BenchmarkId::new("mul_add_c", len), &len, |b, _| {
            b.iter(|| mul_add_region(0x1D, &src, &mut dst))
        });
    }
    g.finish();
}

fn bench_dot(c: &mut Criterion) {
    // The k-way encode kernel at k = 6 and 10 (Table I's extremes).
    let mut g = c.benchmark_group("gf_dot_region");
    let len = 64 * 1024;
    for k in [6usize, 10] {
        let srcs: Vec<Vec<u8>> = (0..k).map(|i| buf(len, i as u8)).collect();
        let refs: Vec<&[u8]> = srcs.iter().map(|v| v.as_slice()).collect();
        let coeffs: Vec<u8> = (1..=k as u8).collect();
        let mut dst = vec![0u8; len];
        g.throughput(Throughput::Bytes((k * len) as u64));
        g.bench_with_input(BenchmarkId::new("dot", k), &k, |b, _| {
            b.iter(|| dot_region(&coeffs, &refs, &mut dst))
        });
    }
    g.finish();
}

fn bench_multi(c: &mut Criterion) {
    // Fused all-parities-in-one-pass encode vs m independent dot passes,
    // at the paper's (6,3) and (10,4) shapes.
    let mut g = c.benchmark_group("gf_dot_region_multi");
    let len = 64 * 1024;
    for (k, m) in [(6usize, 3usize), (10, 4)] {
        let srcs: Vec<Vec<u8>> = (0..k).map(|i| buf(len, i as u8)).collect();
        let refs: Vec<&[u8]> = srcs.iter().map(|v| v.as_slice()).collect();
        let rows: Vec<Vec<u8>> = (0..m)
            .map(|r| (0..k).map(|i| ((r * 31 + i * 7 + 2) % 255) as u8).collect())
            .collect();
        let row_refs: Vec<&[u8]> = rows.iter().map(|v| v.as_slice()).collect();
        let mut outs: Vec<Vec<u8>> = (0..m).map(|_| vec![0u8; len]).collect();
        g.throughput(Throughput::Bytes((k * len) as u64));
        g.bench_with_input(
            BenchmarkId::new("fused", format!("({k},{m})")),
            &k,
            |b, _| {
                b.iter(|| {
                    let mut out_refs: Vec<&mut [u8]> =
                        outs.iter_mut().map(|v| v.as_mut_slice()).collect();
                    dot_region_multi(&row_refs, &refs, &mut out_refs)
                })
            },
        );
        let mut outs2: Vec<Vec<u8>> = (0..m).map(|_| vec![0u8; len]).collect();
        g.bench_with_input(
            BenchmarkId::new("independent", format!("({k},{m})")),
            &k,
            |b, _| {
                b.iter(|| {
                    for (row, out) in row_refs.iter().zip(outs2.iter_mut()) {
                        dot_region(row, &refs, out);
                    }
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_kernels, bench_dot, bench_multi);
criterion_main!(benches);

//! Criterion bench for Figure 9: degraded-read planning (repair source
//! selection + timing) for every cell of Table I.

use ecfrm_bench::harness::{BenchmarkId, Criterion};
use ecfrm_bench::{criterion_group, criterion_main};

use ecfrm_bench::experiment::{run_degraded, ExperimentConfig};
use ecfrm_bench::params::{lrc_params, lrc_schemes, rs_params, rs_schemes};

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        trials_degraded: 200,
        address_space: 3_000,
        ..ExperimentConfig::default()
    }
}

fn bench_fig9_rs(c: &mut Criterion) {
    let cfg = cfg();
    let mut g = c.benchmark_group("fig9_degraded_read_rs");
    for (k, m) in rs_params() {
        for scheme in rs_schemes(k, m) {
            g.bench_with_input(
                BenchmarkId::new(scheme.name(), format!("({k},{m})")),
                &scheme,
                |b, s| b.iter(|| run_degraded(s, &cfg).speed_mb_s),
            );
        }
    }
    g.finish();
}

fn bench_fig9_lrc(c: &mut Criterion) {
    let cfg = cfg();
    let mut g = c.benchmark_group("fig9_degraded_read_lrc");
    for (k, l, m) in lrc_params() {
        for scheme in lrc_schemes(k, l, m) {
            g.bench_with_input(
                BenchmarkId::new(scheme.name(), format!("({k},{l},{m})")),
                &scheme,
                |b, s| b.iter(|| run_degraded(s, &cfg).cost),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig9_rs, bench_fig9_lrc);
criterion_main!(benches);

//! Criterion bench: raw encode/decode throughput of the candidate codes —
//! the paper's §II-D point that with fast GF arithmetic, computation is
//! not the differentiator (I/O is).

use std::sync::Arc;

use ecfrm_bench::harness::{BenchmarkId, Criterion, Throughput};
use ecfrm_bench::{criterion_group, criterion_main};

use ecfrm_codes::{CandidateCode, LrcCode, RsCode};
use ecfrm_core::{LayoutKind, Scheme};

const ELEMENT: usize = 64 * 1024;

fn data(k: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            (0..ELEMENT)
                .map(|j| ((i * 31 + j * 7 + 11) % 256) as u8)
                .collect()
        })
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("encode_throughput");
    let codes: Vec<Arc<dyn CandidateCode>> = vec![
        Arc::new(RsCode::vandermonde(6, 3)),
        Arc::new(RsCode::cauchy(6, 3)),
        Arc::new(LrcCode::new(6, 2, 2)),
        Arc::new(RsCode::vandermonde(10, 5)),
        Arc::new(LrcCode::new(10, 2, 4)),
    ];
    for code in codes {
        let k = code.k();
        let d = data(k);
        let refs: Vec<&[u8]> = d.iter().map(|v| v.as_slice()).collect();
        g.throughput(Throughput::Bytes((k * ELEMENT) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(code.name()),
            &code,
            |b, code| {
                let mut parity = vec![vec![0u8; ELEMENT]; code.m()];
                b.iter(|| code.encode(&refs, &mut parity));
            },
        );
    }
    g.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode_worst_case");
    let codes: Vec<Arc<dyn CandidateCode>> = vec![
        Arc::new(RsCode::vandermonde(6, 3)),
        Arc::new(LrcCode::new(6, 2, 2)),
    ];
    for code in codes {
        let k = code.k();
        let d = data(k);
        let refs: Vec<&[u8]> = d.iter().map(|v| v.as_slice()).collect();
        let mut parity = vec![vec![0u8; ELEMENT]; code.m()];
        code.encode(&refs, &mut parity);
        let shards: Vec<Option<Vec<u8>>> = d
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        let tolerance = code.fault_tolerance();
        g.throughput(Throughput::Bytes((tolerance * ELEMENT) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(code.name()),
            &code,
            |b, code| {
                b.iter(|| {
                    let mut s = shards.clone();
                    for slot in s.iter_mut().take(tolerance) {
                        *slot = None;
                    }
                    code.decode(&mut s, ELEMENT).unwrap();
                });
            },
        );
    }
    g.finish();
}

fn bench_stripe_encode(c: &mut Criterion) {
    // Whole-stripe encoding through the Scheme (the store's write path).
    let mut g = c.benchmark_group("stripe_encode");
    let code: Arc<dyn CandidateCode> = Arc::new(LrcCode::new(6, 2, 2));
    for kind in [LayoutKind::Standard, LayoutKind::EcFrm] {
        let scheme = Scheme::builder(code.clone()).layout(kind).build();
        let dps = scheme.data_per_stripe();
        let d = data(dps);
        let refs: Vec<&[u8]> = d.iter().map(|v| v.as_slice()).collect();
        g.throughput(Throughput::Bytes((dps * ELEMENT) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(scheme.name()),
            &scheme,
            |b, s| b.iter(|| s.encode_stripe(0, &refs)),
        );
    }
    g.finish();
}

fn bench_decoder_cache(c: &mut Criterion) {
    // The Jerasure-style optimisation: repeated repairs of one geometry
    // with vs without coefficient caching.
    use ecfrm_codes::DecoderCache;
    let mut g = c.benchmark_group("repair_one_element");
    let code = RsCode::vandermonde(6, 3);
    let k = code.k();
    let d = data(k);
    let refs: Vec<&[u8]> = d.iter().map(|v| v.as_slice()).collect();
    let mut parity = vec![vec![0u8; ELEMENT]; code.m()];
    code.encode(&refs, &mut parity);
    let full: Vec<Vec<u8>> = d.into_iter().chain(parity).collect();
    let sources: Vec<(usize, &[u8])> = (1..7).map(|p| (p, full[p].as_slice())).collect();
    g.throughput(Throughput::Bytes(ELEMENT as u64));
    g.bench_function("uncached", |b| {
        b.iter(|| {
            ecfrm_codes::decode::reconstruct_one(code.generator(), 0, &sources, ELEMENT).unwrap()
        })
    });
    let cache = DecoderCache::new(code.generator().clone());
    g.bench_function("cached", |b| {
        b.iter(|| cache.reconstruct(0, &sources, ELEMENT).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_encode,
    bench_decode,
    bench_stripe_encode,
    bench_decoder_cache
);
criterion_main!(benches);

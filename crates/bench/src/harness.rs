//! A minimal benchmark harness with a criterion-flavoured API.
//!
//! The offline build carries no external crates, so this module supplies
//! the small slice of the criterion surface the bench targets use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::bench_function`], [`Throughput::Bytes`], and
//! [`Bencher::iter`], plus the `criterion_group!` / `criterion_main!`
//! macros (exported from the crate root). Each benchmark warms up
//! briefly, then runs for a fixed wall-clock budget and reports the mean
//! iteration time (and MB/s when a throughput is set).

use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark after warm-up.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Warm-up budget per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);
/// Hard cap on measured iterations (fast benches stop here).
const MAX_ITERS: u64 = 100_000;

/// Top-level benchmark driver. `--filter <substr>` (or a bare positional
/// argument) restricts which benchmarks run, matching on the full
/// `group/id` label.
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Build a driver, reading the filter from the command line and
    /// ignoring harness flags cargo passes (`--bench`, `--exact`, ...).
    pub fn new() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with("--"))
            .filter(|a| !a.is_empty());
        Self { filter }
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            printed_header: false,
        }
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Self::new()
    }
}

/// How to convert iteration time into a rate for reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration (reported as MB/s, 1 MB = 10^6 B).
    Bytes(u64),
    /// Logical elements processed per iteration (reported as Melem/s).
    Elements(u64),
}

/// A benchmark label: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A label with distinct function and parameter parts.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// A label that is just a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
    printed_header: bool,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id.clone(), |b| f(b, input));
        self
    }

    /// Run one benchmark with no input.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        if !self.printed_header {
            println!("{}", self.name);
            self.printed_header = true;
        }
        let mut bencher = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if bencher.iters == 0 {
            println!("  {id:<40} (no iterations)");
            return;
        }
        let mean = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                format!("  {:>10.1} MB/s", bytes as f64 / 1e6 / mean)
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.2} Melem/s", n as f64 / 1e6 / mean)
            }
            None => String::new(),
        };
        println!(
            "  {:<40} {:>12}/iter  ({} iters){}",
            id,
            format_duration(mean),
            bencher.iters,
            rate
        );
    }

    /// Close the group (a blank separator line).
    pub fn finish(&mut self) {
        if self.printed_header {
            println!();
        }
    }
}

fn format_duration(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Warm up, then run `f` repeatedly within the measurement budget,
    /// recording iteration count and elapsed time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_BUDGET {
            std::hint::black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_BUDGET && iters < MAX_ITERS {
            std::hint::black_box(f());
            iters += 1;
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert!(b.iters > 0);
        assert!(count >= b.iters, "warm-up iterations also run");
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", "(6,3)").id, "f/(6,3)");
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
    }

    #[test]
    fn format_duration_scales() {
        assert_eq!(format_duration(2.0), "2.000 s");
        assert_eq!(format_duration(0.002), "2.000 ms");
        assert_eq!(format_duration(0.000_002), "2.000 µs");
        assert_eq!(format_duration(0.000_000_002), "2.0 ns");
    }
}

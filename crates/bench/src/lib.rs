//! Experiment harness regenerating every figure of the EC-FRM paper.
//!
//! The evaluation (§VI) compares three *forms* of each code — standard,
//! rotated ("R-"), and EC-FRM — over the Table I parameters, under the
//! §VI-B/§VI-C random-read workloads, on a Savvio 10K.3 disk array.
//! This crate packages those pieces:
//!
//! * [`params`] — Table I's parameter sets and scheme constructors;
//! * [`experiment`] — run one (scheme, workload) cell and summarise
//!   speed / cost / load metrics;
//! * [`report`] — aligned text tables with paper-style gain percentages.
//!
//! The `figures` binary drives it:
//!
//! ```text
//! cargo run -p ecfrm-bench --release --bin figures -- all
//! ```

#![warn(missing_docs)]

pub mod experiment;
pub mod harness;
pub mod params;
pub mod report;

pub use experiment::{run_degraded, run_normal, DegradedResult, ExperimentConfig, NormalResult};
pub use params::{lrc_params, lrc_schemes, rs_params, rs_schemes, three_forms};

/// Group benchmark functions under one driver function (criterion-style).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::harness::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Entry point running every group (criterion-style).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::harness::Criterion::new();
            $( $group(&mut c); )+
        }
    };
}

//! Table I: the tested erasure codes and parameters.

use std::sync::Arc;

use ecfrm_codes::{CandidateCode, LrcCode, RsCode};
use ecfrm_core::{LayoutKind, Scheme};

/// Table I, left column: Reed–Solomon `(k, m)` parameters.
pub fn rs_params() -> [(usize, usize); 3] {
    [(6, 3), (8, 4), (10, 5)]
}

/// Table I, right column: LRC `(k, l, m)` parameters.
pub fn lrc_params() -> [(usize, usize, usize); 3] {
    [(6, 2, 2), (8, 2, 3), (10, 2, 4)]
}

/// The three evaluated forms of a code: standard, rotated, EC-FRM —
/// in the order the paper's figure legends use.
pub fn three_forms(code: Arc<dyn CandidateCode>) -> [Scheme; 3] {
    [LayoutKind::Standard, LayoutKind::Rotated, LayoutKind::EcFrm]
        .map(|kind| Scheme::builder(code.clone()).layout(kind).build())
}

/// The three forms of `RS(k, m)`.
pub fn rs_schemes(k: usize, m: usize) -> [Scheme; 3] {
    three_forms(Arc::new(RsCode::vandermonde(k, m)))
}

/// The three forms of `LRC(k, l, m)`.
pub fn lrc_schemes(k: usize, l: usize, m: usize) -> [Scheme; 3] {
    three_forms(Arc::new(LrcCode::new(k, l, m)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_parameters() {
        assert_eq!(rs_params().len(), 3);
        assert_eq!(lrc_params().len(), 3);
        for (k, m) in rs_params() {
            let schemes = rs_schemes(k, m);
            assert_eq!(schemes[0].n_disks(), k + m);
            assert!(schemes[2].name().starts_with("EC-FRM-RS"));
        }
        for (k, l, m) in lrc_params() {
            let schemes = lrc_schemes(k, l, m);
            assert_eq!(schemes[0].n_disks(), k + l + m);
            assert!(schemes[1].name().starts_with("R-LRC"));
        }
    }
}

//! Cold-cache file I/O microbenchmark: blocking sorted-pass reads vs
//! the io_uring backend, across queue depths.
//!
//! ```text
//! file_io [--quick] [--no-json]
//! ```
//!
//! One flat `FileDisk` file of 64 KiB elements is ingested once, then
//! read back in randomized stripe-shaped batches (8 scattered elements
//! per batch, every element exactly once per pass, a fresh permutation
//! each pass so neither backend can ride the previous pass's order).
//! Before every pass the kernel page cache for the file is dropped
//! (`posix_fadvise(DONTNEED)` via `FileDisk::drop_cache`), so both
//! backends pay real disk time — the regime EC-FRM cares about, since
//! degraded and repair reads land on cold data.
//!
//! For each queue depth in {1, 8, 32, 128} two rows are produced:
//!
//! * **blocking** — `qd` reader threads over the sorted single-pass
//!   backend. The per-disk file lock serializes them (one submitter
//!   keeps exactly one hardware queue slot busy), which is precisely
//!   the limitation the uring backend removes.
//! * **uring** — a single submitter keeping a window of batches in
//!   flight on a ring of depth `qd` (`O_DIRECT` where the filesystem
//!   allows it).
//!
//! Every pass is correctness-gated: each element is compared against
//! the deterministic ingest pattern byte-for-byte. Results land in
//! `BENCH_file_io.json` with a `uring_supported` flag so CI can demand
//! uring rows exactly when the kernel can produce them.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use ecfrm_sim::{DiskBackend, FileDisk, FileIoConfig};

const ELEMENT: usize = 65536;
const BATCH_ELEMS: usize = 8;
const DEPTHS: [u32; 4] = [1, 8, 32, 128];

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Shared element body: every element carries this pattern after a
/// 16-byte per-offset header, so verification is two slice compares
/// (memcmp speed) instead of regenerating 64 KiB per element — the
/// submitter thread must never become the bottleneck being measured.
fn body() -> &'static [u8] {
    static BODY: std::sync::OnceLock<Vec<u8>> = std::sync::OnceLock::new();
    BODY.get_or_init(|| (0..ELEMENT).map(|i| ((i * 131 + 7) % 251) as u8).collect())
}

fn header(offset: u64) -> [u8; 16] {
    let mut h = [0u8; 16];
    h[..8].copy_from_slice(&offset.to_le_bytes());
    h[8..].copy_from_slice(&(offset ^ 0x9E37_79B9_7F4A_7C15).to_le_bytes());
    h
}

/// Deterministic per-element payload, so every pass can verify bytes.
fn element_bytes(offset: u64) -> Vec<u8> {
    let mut e = body().to_vec();
    e[..16].copy_from_slice(&header(offset));
    e
}

/// Every element exactly once, shuffled, chunked into batches.
fn batches(n_elems: u64, seed: u64) -> Vec<Vec<u64>> {
    let mut order: Vec<u64> = (0..n_elems).collect();
    let mut x = seed | 1;
    for i in (1..order.len()).rev() {
        order.swap(i, (xorshift(&mut x) % (i as u64 + 1)) as usize);
    }
    order.chunks(BATCH_ELEMS).map(<[u64]>::to_vec).collect()
}

fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * p) as usize]
}

struct Row {
    backend: &'static str,
    qd: u32,
    gb_per_s: f64,
    p50_us: u64,
    p99_us: u64,
}

fn verify(batch: &[u64], got: &[Option<Vec<u8>>]) {
    for (o, g) in batch.iter().zip(got) {
        let g = g
            .as_deref()
            .unwrap_or_else(|| panic!("element {o} missing"));
        assert!(
            g[..16] == header(*o) && g[16..] == body()[16..],
            "element {o} read back wrong"
        );
    }
}

/// Blocking backend: `qd` threads pull batches from a shared cursor;
/// the disk's file lock serializes the actual I/O.
fn blocking_pass(disk: &FileDisk, batches: &[Vec<u64>], qd: u32) -> Row {
    let next = AtomicUsize::new(0);
    let t0 = Instant::now();
    let mut lat: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..qd)
            .map(|_| {
                s.spawn(|| {
                    let mut lat = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(batch) = batches.get(i) else {
                            return lat;
                        };
                        let t = Instant::now();
                        let got = disk.read_many(batch);
                        lat.push(t.elapsed().as_micros() as u64);
                        verify(batch, &got);
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("reader died"))
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    lat.sort_unstable();
    Row {
        backend: "blocking",
        qd,
        gb_per_s: (batches.len() * BATCH_ELEMS * ELEMENT) as f64 / 1e9 / elapsed,
        p50_us: pct(&lat, 0.50),
        p99_us: pct(&lat, 0.99),
    }
}

/// Uring backend: one submitter keeps a window of batches in flight on
/// a ring of depth `qd`; completions are awaited oldest-first.
fn uring_pass(disk: &FileDisk, batches: &[Vec<u64>], qd: u32) -> Row {
    // Enough concurrent batches to keep ~qd runs inside the ring.
    let window = (qd as usize).div_ceil(BATCH_ELEMS).max(1) * 2;
    let mut inflight: VecDeque<(Instant, usize, ecfrm_sim::IoHandle)> = VecDeque::new();
    let mut lat: Vec<u64> = Vec::with_capacity(batches.len());
    let t0 = Instant::now();
    for (i, batch) in batches.iter().enumerate() {
        if inflight.len() == window {
            let (t, j, handle) = inflight.pop_front().expect("window nonempty");
            let got = handle.wait();
            lat.push(t.elapsed().as_micros() as u64);
            verify(&batches[j], &got);
        }
        inflight.push_back((Instant::now(), i, disk.submit_read_many(batch)));
    }
    for (t, j, handle) in inflight {
        let got = handle.wait();
        lat.push(t.elapsed().as_micros() as u64);
        verify(&batches[j], &got);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    lat.sort_unstable();
    Row {
        backend: "uring",
        qd,
        gb_per_s: (batches.len() * BATCH_ELEMS * ELEMENT) as f64 / 1e9 / elapsed,
        p50_us: pct(&lat, 0.50),
        p99_us: pct(&lat, 0.99),
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_json = args.iter().any(|a| a == "--no-json");
    let n_elems: u64 = if quick { 1024 } else { 8192 };

    // An explicit ECFRM_FORCE_FILE_IO would silently re-route the
    // per-pass configs, mislabeling rows — run only the matching side.
    let forced = std::env::var("ECFRM_FORCE_FILE_IO").ok();
    let run_blocking = forced.as_deref() != Some("uring");
    let run_uring = forced.is_none() && ecfrm_sim::uring::supported();
    if let Some(f) = &forced {
        println!("ECFRM_FORCE_FILE_IO={f} set: benching only that backend");
    }

    let path = std::env::temp_dir().join(format!("ecfrm-bench-fileio-{}", std::process::id()));
    {
        let ingest =
            FileDisk::create_with(&path, ELEMENT, FileIoConfig::blocking()).expect("create file");
        for o in 0..n_elems {
            ingest.write(o, element_bytes(o));
        }
        ingest.drop_cache().expect("flush ingest");
    }
    println!(
        "file_io: {n_elems} x {ELEMENT} B elements ({} MiB), batches of {BATCH_ELEMS} \
         scattered elements, cold cache before every pass",
        n_elems as usize * ELEMENT / (1 << 20)
    );

    let mut rows: Vec<Row> = Vec::new();
    let mut seed = 0xEC_F12;
    for qd in DEPTHS {
        if run_blocking {
            seed += 1;
            let disk =
                FileDisk::open_with(&path, ELEMENT, FileIoConfig::blocking()).expect("open file");
            assert_eq!(
                disk.io_backend(),
                "blocking",
                "pass label must match backend"
            );
            disk.drop_cache().expect("drop cache");
            rows.push(blocking_pass(&disk, &batches(n_elems, seed), qd));
        }
        if run_uring {
            seed += 1;
            let disk =
                FileDisk::open_with(&path, ELEMENT, FileIoConfig::uring(qd)).expect("open file");
            assert!(
                disk.io_backend().starts_with("uring"),
                "pass label must match backend"
            );
            disk.drop_cache().expect("drop cache");
            rows.push(uring_pass(&disk, &batches(n_elems, seed), qd));
        }
    }

    println!(
        "\n  {:<10} {:>4} {:>10} {:>9} {:>9}",
        "backend", "qd", "GB/s", "p50 us", "p99 us"
    );
    for r in &rows {
        println!(
            "  {:<10} {:>4} {:>10.3} {:>9} {:>9}",
            r.backend, r.qd, r.gb_per_s, r.p50_us, r.p99_us
        );
    }
    let find = |backend: &str, qd: u32| {
        rows.iter()
            .find(|r| r.backend == backend && r.qd == qd)
            .map(|r| r.gb_per_s)
    };
    let speedup_qd32 = match (find("blocking", 32), find("uring", 32)) {
        (Some(b), Some(u)) if b > 0.0 => Some(u / b),
        _ => None,
    };
    if let Some(s) = speedup_qd32 {
        println!("  uring speedup over blocking at qd 32: {s:.2}x");
    }

    if no_json {
        return;
    }
    let row_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"backend\": \"{}\", \"qd\": {}, \"gb_per_s\": {}, \
                 \"p50_us\": {}, \"p99_us\": {}}}",
                r.backend,
                r.qd,
                json_f(r.gb_per_s),
                r.p50_us,
                r.p99_us
            )
        })
        .collect();
    let body = format!(
        "{{\n  \"bench\": \"file_io\",\n\
         \x20 \"shape\": {{\"elements\": {n_elems}, \"element\": {ELEMENT}, \
         \"batch_elems\": {BATCH_ELEMS}}},\n\
         \x20 \"uring_supported\": {},\n\
         \x20 \"speedup_qd32\": {},\n\
         \x20 \"rows\": [\n{}\n  ]\n}}\n",
        run_uring,
        speedup_qd32.map_or("null".into(), json_f),
        row_json.join(",\n"),
    );
    std::fs::write("BENCH_file_io.json", &body).expect("write BENCH_file_io.json");
    println!("wrote BENCH_file_io.json");
    let _ = std::fs::remove_file(&path);
}

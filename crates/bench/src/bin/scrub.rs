//! Integrity microbenchmark: verify-on-read overhead and scrub
//! throughput.
//!
//! ```text
//! scrub [--quick] [--no-json]
//! ```
//!
//! An RS(6,3) EC-FRM store runs over latency-injected `MemDisk`s (so
//! disk service time, not memcpy, dominates — as on a real array, where
//! checksum verification must hide behind I/O). Two questions, two
//! sections:
//!
//! * **Verify-on-read overhead.** The same random-read workload runs
//!   twice — once with footer verification disabled, once with it on
//!   (the default). Throughput (GB/s) and tail latency (p99) are
//!   compared; the headline `overhead_pct` is the throughput cost of
//!   verifying every element a foreground read touches.
//! * **Scrub throughput.** The merkle scrub (recompute each element's
//!   checksum, fold the leaf hashes, compare one root per stripe) is
//!   timed against the decode scrub (re-encode every stripe and compare
//!   parity), both over the same sealed store.
//!
//! Every measured pass is gated on correctness: reads are compared
//! byte-for-byte against the ingested payload and both scrubs must
//! come back clean. The JSON lands in `BENCH_scrub.json`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ecfrm_codes::RsCode;
use ecfrm_core::{LayoutKind, Scheme};
use ecfrm_sim::ThreadedArray;
use ecfrm_store::ObjectStore;

const ELEMENT: usize = 65536;
const DISK_LATENCY: Duration = Duration::from_micros(200);
const READERS: usize = 2;
const READ_ELEMENTS: u64 = 4;

fn scheme() -> Scheme {
    Scheme::builder(Arc::new(RsCode::vandermonde(6, 3)))
        .layout(LayoutKind::EcFrm)
        .build()
}

fn payload(stripes: usize, dps: usize) -> Vec<u8> {
    (0..stripes * dps * ELEMENT)
        .map(|i| ((i * 131 + 7) % 251) as u8)
        .collect()
}

fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * p) as usize]
}

struct ReadRow {
    label: &'static str,
    reads: usize,
    gb_per_s: f64,
    p50_us: u64,
    p99_us: u64,
}

/// One fixed-size random-read pass against `store`, comparing every
/// answer against `data`. Returns (GB/s, sorted latencies).
fn read_pass(
    store: &Arc<ObjectStore>,
    data: &Arc<Vec<u8>>,
    label: &'static str,
    total_reads: usize,
) -> ReadRow {
    let remaining = Arc::new(AtomicUsize::new(total_reads));
    let size = READ_ELEMENTS * ELEMENT as u64;
    let t0 = Instant::now();
    let handles: Vec<_> = (0..READERS)
        .map(|r| {
            let store = Arc::clone(store);
            let data = Arc::clone(data);
            let remaining = Arc::clone(&remaining);
            std::thread::spawn(move || {
                let mut lat = Vec::new();
                let mut x = ((r as u64 + 1) * 0x9E37_79B9_7F4A_7C15) | 1;
                while remaining
                    .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
                    .is_ok()
                {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let start = x % (data.len() as u64 - size);
                    let t = Instant::now();
                    let got = store.get_range("obj", start, size).expect("read failed");
                    lat.push(t.elapsed().as_micros() as u64);
                    // Correctness gate: never publish numbers for a pass
                    // that returned wrong bytes.
                    assert_eq!(
                        got,
                        data[start as usize..(start + size) as usize],
                        "read returned wrong bytes at offset {start}"
                    );
                }
                lat
            })
        })
        .collect();
    let mut lat: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("reader died"))
        .collect();
    let elapsed = t0.elapsed().as_secs_f64();
    lat.sort_unstable();
    ReadRow {
        label,
        reads: lat.len(),
        gb_per_s: lat.len() as f64 * size as f64 / 1e9 / elapsed,
        p50_us: pct(&lat, 0.50),
        p99_us: pct(&lat, 0.99),
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_json = args.iter().any(|a| a == "--no-json");
    let stripes = if quick { 16 } else { 64 };
    let total_reads = if quick { 300 } else { 1500 };

    let scheme = scheme();
    let dps = scheme.data_per_stripe();
    let data = Arc::new(payload(stripes, dps));
    let store = Arc::new(ObjectStore::with_array(
        scheme.clone(),
        ELEMENT,
        ThreadedArray::with_latency(scheme.n_disks(), DISK_LATENCY),
    ));
    store.put("obj", &data).unwrap();
    store.flush();
    println!(
        "scrub: RS(6,3) ec-frm, {stripes} stripes x {ELEMENT} B elements, \
         disk latency {DISK_LATENCY:?}, {READERS} readers x {total_reads} reads total"
    );

    // --- Verify-on-read overhead: same workload, footer checks off/on.
    // A throwaway pass first: thread spawn, page faults and disk-queue
    // warm-up otherwise land entirely on whichever mode runs first.
    read_pass(&store, &data, "warmup", total_reads / 4);
    store.set_verify_reads(false);
    let off = read_pass(&store, &data, "unverified", total_reads);
    store.set_verify_reads(true);
    let on = read_pass(&store, &data, "verified", total_reads);
    let overhead_pct = (1.0 - on.gb_per_s / off.gb_per_s) * 100.0;

    println!(
        "\n  {:<12} {:>8} {:>10} {:>9} {:>9}",
        "reads", "count", "GB/s", "p50 us", "p99 us"
    );
    for r in [&off, &on] {
        println!(
            "  {:<12} {:>8} {:>10.3} {:>9} {:>9}",
            r.label, r.reads, r.gb_per_s, r.p50_us, r.p99_us
        );
    }
    println!("  verify-on-read overhead: {overhead_pct:.1}% of read throughput");

    // --- Scrub throughput: merkle (hash every cell, compare roots)
    // vs decode (re-encode every stripe, compare parity). Same bytes
    // scanned either way — one cell per disk per stripe.
    let cells_per_stripe = store
        .manifest(0)
        .map_or(scheme.data_per_stripe(), |m| m.n_elements());
    let scanned = (stripes * cells_per_stripe * ELEMENT) as f64;
    let t = Instant::now();
    let merkle = store.scrub().expect("merkle scrub failed");
    let merkle_s = t.elapsed().as_secs_f64().max(1e-9);
    assert!(
        merkle.is_clean(),
        "merkle scrub found corruption: {merkle:?}"
    );
    let t = Instant::now();
    let decode = store.scrub_decode().expect("decode scrub failed");
    let decode_s = t.elapsed().as_secs_f64().max(1e-9);
    assert!(
        decode.is_clean(),
        "decode scrub found corruption: {decode:?}"
    );
    let merkle_mb = scanned / 1e6 / merkle_s;
    let decode_mb = scanned / 1e6 / decode_s;
    println!(
        "\n  merkle scrub: {merkle_mb:.1} MB/s   decode scrub: {decode_mb:.1} MB/s   \
         (decode/merkle time ratio {:.2})",
        decode_s / merkle_s
    );

    if no_json {
        return;
    }
    let body = format!(
        "{{\n  \"bench\": \"scrub\",\n\
         \x20 \"shape\": {{\"stripes\": {stripes}, \"element\": {ELEMENT}, \
         \"disk_latency_us\": {}, \"readers\": {READERS}}},\n\
         \x20 \"reads\": [\n\
         \x20   {{\"mode\": \"unverified\", \"reads\": {}, \"gb_per_s\": {}, \
         \"p50_us\": {}, \"p99_us\": {}}},\n\
         \x20   {{\"mode\": \"verified\", \"reads\": {}, \"gb_per_s\": {}, \
         \"p50_us\": {}, \"p99_us\": {}}}\n\
         \x20 ],\n\
         \x20 \"overhead_pct\": {},\n\
         \x20 \"scrub\": {{\"merkle_mb_per_s\": {}, \"decode_mb_per_s\": {}, \
         \"decode_over_merkle_time\": {}}}\n}}\n",
        DISK_LATENCY.as_micros(),
        off.reads,
        json_f(off.gb_per_s),
        off.p50_us,
        off.p99_us,
        on.reads,
        json_f(on.gb_per_s),
        on.p50_us,
        on.p99_us,
        json_f(overhead_pct),
        json_f(merkle_mb),
        json_f(decode_mb),
        json_f(decode_s / merkle_s),
    );
    std::fs::write("BENCH_scrub.json", &body).expect("write BENCH_scrub.json");
    println!("wrote BENCH_scrub.json");
}

//! Regenerate every table and figure of the EC-FRM paper's evaluation.
//!
//! ```text
//! figures [--quick] [--json] [fig8a|fig8b|fig9a|fig9b|fig9c|fig9d|all|
//!          sweep-elem|sweep-size|hetero|placement|cauchy|ablations]
//! ```
//!
//! `--json` additionally writes one `BENCH_<figure>.json` per figure
//! (fig8a/fig8b/fig9a–d) with tail-latency (p50/p95/p99 ms) and
//! load-imbalance (max/mean disk load) columns next to the speeds.
//!
//! Absolute MB/s differ from the paper (their testbed is real hardware;
//! ours is the calibrated Savvio model), but the comparisons — who wins
//! and by what factor — are the reproduced result. See EXPERIMENTS.md.

use std::sync::Arc;

use ecfrm_bench::experiment::{run_degraded, run_normal, ExperimentConfig};
use ecfrm_bench::params::{lrc_params, lrc_schemes, rs_params, rs_schemes};
use ecfrm_bench::report::{
    degraded_cost_table, degraded_json, degraded_speed_table, gain_pct, normal_json, normal_table,
};
use ecfrm_codes::{CandidateCode, RsCode};
use ecfrm_core::{LayoutKind, Scheme};
use ecfrm_sim::{mean, DiskModel, NormalReadWorkload};
use ecfrm_util::{par_map, Rng};

/// Write one figure's JSON report next to the working directory and say
/// so; figures are regenerated wholesale, so overwriting is the point.
fn write_json(name: &str, body: &str) {
    let path = format!("BENCH_{name}.json");
    match std::fs::write(&path, body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}

fn fig8a(cfg: &ExperimentConfig, json: bool) {
    let rows: Vec<_> = par_map(&rs_params(), |_, &(k, m)| {
        let [s, r, e] = rs_schemes(k, m);
        (
            format!("({k},{m})"),
            [
                run_normal(&s, cfg),
                run_normal(&r, cfg),
                run_normal(&e, cfg),
            ],
        )
    });
    println!(
        "{}",
        normal_table("Figure 8(a): normal read speed, RS forms (MB/s)", &rows)
    );
    if json {
        write_json("fig8a", &normal_json("fig8a", &rows));
    }
}

fn fig8b(cfg: &ExperimentConfig, json: bool) {
    let rows: Vec<_> = par_map(&lrc_params(), |_, &(k, l, m)| {
        let [s, r, e] = lrc_schemes(k, l, m);
        (
            format!("({k},{l},{m})"),
            [
                run_normal(&s, cfg),
                run_normal(&r, cfg),
                run_normal(&e, cfg),
            ],
        )
    });
    println!(
        "{}",
        normal_table("Figure 8(b): normal read speed, LRC forms (MB/s)", &rows)
    );
    if json {
        write_json("fig8b", &normal_json("fig8b", &rows));
    }
}

fn degraded_rows_rs(cfg: &ExperimentConfig) -> Vec<(String, [ecfrm_bench::DegradedResult; 3])> {
    par_map(&rs_params(), |_, &(k, m)| {
        let [s, r, e] = rs_schemes(k, m);
        (
            format!("({k},{m})"),
            [
                run_degraded(&s, cfg),
                run_degraded(&r, cfg),
                run_degraded(&e, cfg),
            ],
        )
    })
}

fn degraded_rows_lrc(cfg: &ExperimentConfig) -> Vec<(String, [ecfrm_bench::DegradedResult; 3])> {
    par_map(&lrc_params(), |_, &(k, l, m)| {
        let [s, r, e] = lrc_schemes(k, l, m);
        (
            format!("({k},{l},{m})"),
            [
                run_degraded(&s, cfg),
                run_degraded(&r, cfg),
                run_degraded(&e, cfg),
            ],
        )
    })
}

fn fig9(cfg: &ExperimentConfig, which: &str, json: bool) {
    let rows = match which {
        "a" | "c" => degraded_rows_rs(cfg),
        "b" | "d" => degraded_rows_lrc(cfg),
        _ => unreachable!(),
    };
    let table = match which {
        "a" => degraded_cost_table(
            "Figure 9(a): degraded read cost, RS forms (fetched/requested)",
            &rows,
        ),
        "b" => degraded_cost_table(
            "Figure 9(b): degraded read cost, LRC forms (fetched/requested)",
            &rows,
        ),
        "c" => degraded_speed_table("Figure 9(c): degraded read speed, RS forms (MB/s)", &rows),
        "d" => degraded_speed_table("Figure 9(d): degraded read speed, LRC forms (MB/s)", &rows),
        _ => unreachable!(),
    };
    println!("{table}");
    if json {
        let name = format!("fig9{which}");
        write_json(&name, &degraded_json(&name, &rows));
    }
}

/// Ablation: how the EC-FRM win varies with element size.
///
/// With full positioning charged per element, speed ratios equal load
/// ratios and the gain is size-independent; with the track-to-track
/// discount (same-request elements sit at adjacent disk offsets), large
/// elements amortise the hot disk's extra positioning and the gain
/// shrinks — the regime where §III-A's "several megabytes" element size
/// matters.
fn sweep_elem(cfg: &ExperimentConfig) {
    println!("Ablation: EC-FRM-RS(6,3) normal-read gain vs element size");
    println!(
        "{:<14} {:>12} {:>14} {:>10} {:>16}",
        "element", "RS MB/s", "EC-FRM MB/s", "gain %", "gain % (seq I/O)"
    );
    for bytes in [250_000usize, 500_000, 1_000_000, 2_000_000, 4_000_000] {
        let mut c = cfg.clone();
        c.element_size = bytes;
        let [s, _, e] = rs_schemes(6, 3);
        let rs = run_normal(&s, &c).speed_mb_s;
        let ec = run_normal(&e, &c).speed_mb_s;
        let mut cs = c.clone();
        cs.disk = cs.disk.with_track_to_track(0.4);
        let [s2, _, e2] = rs_schemes(6, 3);
        let rs_seq = run_normal(&s2, &cs).speed_mb_s;
        let ec_seq = run_normal(&e2, &cs).speed_mb_s;
        println!(
            "{:<14} {:>12.1} {:>14.1} {:>+10.1} {:>+16.1}",
            format!("{} KB", bytes / 1000),
            rs,
            ec,
            gain_pct(ec, rs),
            gain_pct(ec_seq, rs_seq)
        );
    }
    println!();
}

/// Ablation: gain per fixed read size (where does EC-FRM start to win?).
fn sweep_size(cfg: &ExperimentConfig) {
    println!("Ablation: EC-FRM-RS(6,3) normal-read gain vs request size (elements)");
    println!(
        "{:<8} {:>12} {:>14} {:>10}",
        "size", "RS MB/s", "EC-FRM MB/s", "gain %"
    );
    let [s, _, e] = rs_schemes(6, 3);
    for size in [1usize, 2, 4, 6, 7, 8, 10, 12, 16, 20] {
        let mut c = cfg.clone();
        c.trials_normal = cfg.trials_normal.min(1000);
        let wl = NormalReadWorkload {
            trials: c.trials_normal,
            address_space: c.address_space,
            min_size: size,
            max_size: size,
        };
        let sim = ecfrm_sim::ArraySim::uniform(s.n_disks(), c.disk, c.element_size);
        let mut rng = Rng::seed_from_u64(c.seed);
        let speeds_of = |scheme: &Scheme, rng: &mut Rng| {
            let xs: Vec<f64> = wl
                .generate(c.seed)
                .iter()
                .map(|r| {
                    let p = scheme.normal_read_plan(r.start, r.size);
                    sim.read_speed_mb_s(r.size, &p.per_disk_load(), rng)
                })
                .collect();
            mean(&xs)
        };
        let rs = speeds_of(&s, &mut rng);
        let ec = speeds_of(&e, &mut rng);
        println!(
            "{:<8} {:>12.1} {:>14.1} {:>+10.1}",
            size,
            rs,
            ec,
            gain_pct(ec, rs)
        );
    }
    println!();
}

/// Ablation: one slow disk — the max-queue metric's sensitivity to
/// heterogeneity.
fn hetero(cfg: &ExperimentConfig) {
    println!("Ablation: RS(6,3) forms with disk 0 at half speed (normal reads, MB/s)");
    let mut disks = vec![DiskModel::savvio_10k3(); 9];
    disks[0] = DiskModel::savvio_10k3().with_speed_factor(0.5);
    let sim = ecfrm_sim::ArraySim::heterogeneous(disks, cfg.element_size);
    let wl = NormalReadWorkload {
        trials: cfg.trials_normal,
        address_space: cfg.address_space,
        min_size: 1,
        max_size: 20,
    };
    let mut rng = Rng::seed_from_u64(cfg.seed);
    for scheme in rs_schemes(6, 3) {
        let xs: Vec<f64> = wl
            .generate(cfg.seed)
            .iter()
            .map(|r| {
                let p = scheme.normal_read_plan(r.start, r.size);
                sim.read_speed_mb_s(r.size, &p.per_disk_load(), &mut rng)
            })
            .collect();
        println!("{:<20} {:>10.1}", scheme.name(), mean(&xs));
    }
    println!();
}

/// Ablation: EC-FRM vs per-stripe random placement — sequential spreading
/// beats mere spreading.
fn placement(cfg: &ExperimentConfig) {
    println!("Ablation: placement policy, RS(6,3) normal reads (MB/s)");
    let code: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
    let schemes = [
        LayoutKind::Standard,
        LayoutKind::Rotated,
        LayoutKind::Shuffled,
        LayoutKind::KRotated,
        LayoutKind::EcFrm,
    ]
    .map(|kind| Scheme::builder(code.clone()).layout(kind).seed(7).build());
    for scheme in schemes {
        let r = run_normal(&scheme, cfg);
        println!(
            "{:<20} {:>10.1}  (mean max load {:.3}, disks touched {:.2})",
            r.scheme, r.speed_mb_s, r.mean_max_load, r.mean_disks_touched
        );
    }
    println!();
}

/// Ablation: closed-loop concurrency — hot disks delay queued requests,
/// so EC-FRM's balance compounds into aggregate throughput.
fn concurrency(cfg: &ExperimentConfig) {
    println!("Ablation: closed-loop clients, RS(6,3) normal reads (aggregate MB/s)");
    println!(
        "{:<10} {:>12} {:>14} {:>10}",
        "clients", "RS MB/s", "EC-FRM MB/s", "gain %"
    );
    let [s, _, e] = rs_schemes(6, 3);
    let wl = NormalReadWorkload {
        trials: cfg.trials_normal,
        address_space: cfg.address_space,
        min_size: 1,
        max_size: 20,
    };
    let reqs_for = |scheme: &Scheme| -> Vec<ecfrm_sim::Request> {
        wl.generate(cfg.seed)
            .iter()
            .map(|r| {
                let plan = scheme.normal_read_plan(r.start, r.size);
                ecfrm_sim::Request {
                    loads: plan.per_disk_load(),
                    requested: r.size,
                }
            })
            .collect()
    };
    let rs_reqs = reqs_for(&s);
    let ec_reqs = reqs_for(&e);
    for clients in [1usize, 2, 4, 8, 16] {
        let sim_s = ecfrm_sim::EventSim::uniform(s.n_disks(), cfg.disk, cfg.element_size);
        let sim_e = ecfrm_sim::EventSim::uniform(e.n_disks(), cfg.disk, cfg.element_size);
        let t_s = sim_s.throughput_mb_s(&sim_s.run_closed_loop(&rs_reqs, clients));
        let t_e = sim_e.throughput_mb_s(&sim_e.run_closed_loop(&ec_reqs, clients));
        println!(
            "{:<10} {:>12.1} {:>14.1} {:>+10.1}",
            clients,
            t_s,
            t_e,
            gain_pct(t_e, t_s)
        );
    }
    println!();
}

/// Ablation: the framework is code-generic — Cauchy RS gets the same win.
fn cauchy(cfg: &ExperimentConfig) {
    println!("Ablation: EC-FRM over Cauchy-RS(6,3) (framework generality)");
    let code: Arc<dyn CandidateCode> = Arc::new(RsCode::cauchy(6, 3));
    let s = run_normal(&Scheme::builder(code.clone()).build(), cfg);
    let e = run_normal(
        &Scheme::builder(code).layout(LayoutKind::EcFrm).build(),
        cfg,
    );
    println!(
        "{:<20} {:>10.1}\n{:<20} {:>10.1}  ({:+.1}%)",
        s.scheme,
        s.speed_mb_s,
        e.scheme,
        e.speed_mb_s,
        gain_pct(e.speed_mb_s, s.speed_mb_s)
    );
    println!();
}

/// Ablation: vertical codes vs EC-FRM (the paper's §II-B/§III argument
/// made quantitative): X-Code matches EC-FRM's normal-read balance but
/// is stuck at tolerance 2 and prime disk counts; WEAVER at 50%
/// efficiency.
fn vertical(cfg: &ExperimentConfig) {
    use ecfrm_vertical::{Weaver, XCode};
    println!("Ablation: vertical codes vs EC-FRM on 7 disks");
    println!(
        "{:<20} {:>10} {:>10} {:>12} {:>12}",
        "scheme", "MB/s", "tolerance", "efficiency", "any n?"
    );
    let wl = NormalReadWorkload {
        trials: cfg.trials_normal,
        address_space: cfg.address_space,
        min_size: 1,
        max_size: 20,
    };
    let reqs = wl.generate(cfg.seed);
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let sim = ecfrm_sim::ArraySim::uniform(7, cfg.disk, cfg.element_size);

    // EC-FRM-RS(5,2): same 7 disks, same tolerance 2, efficiency 5/7.
    let ec = Scheme::builder(Arc::new(RsCode::vandermonde(5, 2)) as Arc<dyn CandidateCode>)
        .layout(LayoutKind::EcFrm)
        .build();
    let xs: Vec<f64> = reqs
        .iter()
        .map(|r| {
            let p = ec.normal_read_plan(r.start, r.size);
            sim.read_speed_mb_s(r.size, &p.per_disk_load(), &mut rng)
        })
        .collect();
    println!(
        "{:<20} {:>10.1} {:>10} {:>12.3} {:>12}",
        ec.name(),
        mean(&xs),
        ec.code().fault_tolerance(),
        5.0 / 7.0,
        "yes"
    );

    let xcode = XCode::new(7);
    let xs: Vec<f64> = reqs
        .iter()
        .map(|r| {
            let load = xcode.normal_read_load(r.start, r.size);
            sim.read_speed_mb_s(r.size, &load, &mut rng)
        })
        .collect();
    println!(
        "{:<20} {:>10.1} {:>10} {:>12.3} {:>12}",
        xcode.name(),
        mean(&xs),
        xcode.tolerance(),
        xcode.storage_efficiency(),
        "prime only"
    );

    let weaver = Weaver::new(7);
    let xs: Vec<f64> = reqs
        .iter()
        .map(|r| {
            let load = weaver.normal_read_load(r.start, r.size);
            sim.read_speed_mb_s(r.size, &load, &mut rng)
        })
        .collect();
    println!(
        "{:<20} {:>10.1} {:>10} {:>12.3} {:>12}",
        weaver.name(),
        mean(&xs),
        weaver.tolerance(),
        weaver.storage_efficiency(),
        "yes"
    );
    println!("EC-FRM matches vertical normal-read balance without the tolerance/efficiency/prime restrictions.\n");
}

/// Ablation: Zipf object-fetch trace under closed-loop concurrency —
/// the paper's "MP3 library" scenario at system scale.
fn trace(cfg: &ExperimentConfig) {
    println!("Ablation: Zipf(0.9) object trace, LRC(6,2,2) forms, 8 closed-loop clients");
    let t = ecfrm_sim::TraceWorkload {
        objects: 200,
        zipf_alpha: 0.9,
        min_elements: 3,
        max_elements: 12,
        fetches: cfg.trials_normal,
    };
    let (_, fetches) = t.generate(cfg.seed);
    println!(
        "{:<20} {:>14} {:>16}",
        "scheme", "agg MB/s", "mean latency ms"
    );
    for scheme in lrc_schemes(6, 2, 2) {
        let reqs: Vec<ecfrm_sim::Request> = fetches
            .iter()
            .map(|f| {
                let plan = scheme.normal_read_plan(f.start, f.size);
                ecfrm_sim::Request {
                    loads: plan.per_disk_load(),
                    requested: f.size,
                }
            })
            .collect();
        let sim = ecfrm_sim::EventSim::uniform(scheme.n_disks(), cfg.disk, cfg.element_size);
        let done = sim.run_closed_loop(&reqs, 8);
        println!(
            "{:<20} {:>14.1} {:>16.1}",
            scheme.name(),
            sim.throughput_mb_s(&done),
            sim.mean_latency_ms(&done)
        );
    }
    println!();
}

/// Ablation: client-bandwidth sweep — where the paper's "sufficient
/// bandwidth" regime ends. Once the downlink binds, layout stops
/// mattering (all forms converge) and only fetch volume — where LRC's
/// locality wins — distinguishes codes.
fn bandwidth(cfg: &ExperimentConfig) {
    use ecfrm_sim::{ClusterSim, DegradedReadWorkload, NetModel};
    println!("Ablation: degraded reads vs client downlink (mean MB/s of requested data)");
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>12}",
        "downlink", "RS(6,3)", "EC-FRM-RS", "LRC(6,2,2)", "EC-FRM-LRC"
    );
    let [rs_std, _, rs_ec] = rs_schemes(6, 3);
    let [lrc_std, _, lrc_ec] = lrc_schemes(6, 2, 2);
    let speed_of = |scheme: &Scheme, cluster: &ClusterSim| -> f64 {
        let wl = DegradedReadWorkload {
            trials: cfg.trials_degraded.min(2000),
            address_space: cfg.address_space,
            min_size: 1,
            max_size: 20,
            n_disks: scheme.n_disks(),
        };
        let xs: Vec<f64> = wl
            .generate(cfg.seed)
            .iter()
            .map(|r| {
                let plan = scheme.degraded_read_plan(r.start, r.size, &[r.failed_disk.unwrap()]);
                cluster.read_speed_mb_s(r.size, &plan.per_disk_load())
            })
            .collect();
        mean(&xs)
    };
    for down in [f64::INFINITY, 1250.0, 500.0, 250.0, 125.0] {
        let net = NetModel {
            node_uplink_mb_s: f64::INFINITY,
            client_downlink_mb_s: down,
            rtt_ms: 0.2,
        };
        let cluster = ClusterSim::new(cfg.disk, net, cfg.element_size);
        println!(
            "{:<12} {:>10.1} {:>12.1} {:>10.1} {:>12.1}",
            if down.is_infinite() {
                "sufficient".to_string()
            } else {
                format!("{down:.0} MB/s")
            },
            speed_of(&rs_std, &cluster),
            speed_of(&rs_ec, &cluster),
            speed_of(&lrc_std, &cluster),
            speed_of(&lrc_ec, &cluster),
        );
    }
    println!();
}

/// Ablation: open-loop arrival-rate sweep — tail latency under load.
fn latency(cfg: &ExperimentConfig) {
    println!("Ablation: open-loop arrivals, RS(6,3) normal reads — p50/p99 latency (ms)");
    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>12}",
        "interarrival", "RS p50", "RS p99", "EC-FRM p50", "EC-FRM p99"
    );
    let [s, _, e] = rs_schemes(6, 3);
    let wl = NormalReadWorkload {
        trials: cfg.trials_normal,
        address_space: cfg.address_space,
        min_size: 1,
        max_size: 20,
    };
    let reqs_for = |scheme: &Scheme| -> Vec<ecfrm_sim::Request> {
        wl.generate(cfg.seed)
            .iter()
            .map(|r| {
                let plan = scheme.normal_read_plan(r.start, r.size);
                ecfrm_sim::Request {
                    loads: plan.per_disk_load(),
                    requested: r.size,
                }
            })
            .collect()
    };
    let rs_reqs = reqs_for(&s);
    let ec_reqs = reqs_for(&e);
    let sim_s = ecfrm_sim::EventSim::uniform(s.n_disks(), cfg.disk, cfg.element_size);
    let sim_e = ecfrm_sim::EventSim::uniform(e.n_disks(), cfg.disk, cfg.element_size);
    for inter_ms in [60.0f64, 45.0, 35.0, 30.0, 25.0] {
        let d_s = sim_s.run_open_loop(&rs_reqs, inter_ms);
        let d_e = sim_e.run_open_loop(&ec_reqs, inter_ms);
        println!(
            "{:<16} {:>10.0} {:>10.0} {:>12.0} {:>12.0}",
            format!("{inter_ms} ms"),
            sim_s.latency_percentile_ms(&d_s, 0.5),
            sim_s.latency_percentile_ms(&d_s, 0.99),
            sim_e.latency_percentile_ms(&d_e, 0.5),
            sim_e.latency_percentile_ms(&d_e, 0.99),
        );
    }
    println!();
}

/// Ablation: single-disk rebuild — read volume and modelled rebuild time
/// per scheme (EC-FRM spreads recovery reads like a vertical code,
/// paper §V-B).
fn recovery(cfg: &ExperimentConfig) {
    use ecfrm_core::DiskRecovery;
    // Same rebuild volume for every scheme: 960 elements per disk
    // (960 = lcm of every tested layout's offsets-per-stripe).
    const OFFSETS: u64 = 960;
    println!("Ablation: rebuild of one disk holding {OFFSETS} elements");
    println!(
        "{:<20} {:>10} {:>10} {:>14} {:>14}",
        "scheme", "reads", "rebuilt", "max disk load", "model time s"
    );
    let per_elem = cfg.disk.service_time_ms(cfg.element_size);
    let mut schemes = Vec::new();
    schemes.extend(rs_schemes(6, 3));
    schemes.extend(lrc_schemes(6, 2, 2));
    for scheme in schemes {
        let ops = scheme.layout().offsets_per_stripe();
        let rec = DiskRecovery::plan(&scheme, 0, OFFSETS / ops);
        let load = rec.read_load();
        let max = load.iter().max().copied().unwrap_or(0);
        println!(
            "{:<20} {:>10} {:>10} {:>14} {:>14.2}",
            scheme.name(),
            rec.total_reads(),
            rec.total_rebuilt(),
            max,
            max as f64 * per_elem / 1e3
        );
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json = args.iter().any(|a| a == "--json");
    let cfg = if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    let cmds: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let cmds = if cmds.is_empty() { vec!["all"] } else { cmds };

    println!(
        "# EC-FRM figure harness — element {} KB, {} normal / {} degraded trials, jitter {:.0}%\n",
        cfg.element_size / 1000,
        cfg.trials_normal,
        cfg.trials_degraded,
        cfg.jitter * 100.0
    );

    for cmd in cmds {
        match cmd {
            "fig8a" => fig8a(&cfg, json),
            "fig8b" => fig8b(&cfg, json),
            "fig9a" => fig9(&cfg, "a", json),
            "fig9b" => fig9(&cfg, "b", json),
            "fig9c" => fig9(&cfg, "c", json),
            "fig9d" => fig9(&cfg, "d", json),
            "sweep-elem" => sweep_elem(&cfg),
            "sweep-size" => sweep_size(&cfg),
            "hetero" => hetero(&cfg),
            "placement" => placement(&cfg),
            "cauchy" => cauchy(&cfg),
            "concurrency" => concurrency(&cfg),
            "vertical" => vertical(&cfg),
            "trace" => trace(&cfg),
            "latency" => latency(&cfg),
            "bandwidth" => bandwidth(&cfg),
            "recovery" => recovery(&cfg),
            "ablations" => {
                sweep_elem(&cfg);
                sweep_size(&cfg);
                hetero(&cfg);
                placement(&cfg);
                cauchy(&cfg);
                concurrency(&cfg);
                vertical(&cfg);
                trace(&cfg);
                latency(&cfg);
                bandwidth(&cfg);
                recovery(&cfg);
            }
            "all" => {
                fig8a(&cfg, json);
                fig8b(&cfg, json);
                fig9(&cfg, "a", json);
                fig9(&cfg, "b", json);
                fig9(&cfg, "c", json);
                fig9(&cfg, "d", json);
            }
            other => {
                eprintln!("unknown command: {other}");
                eprintln!(
                    "usage: figures [--quick] [--json] [fig8a|fig8b|fig9a|fig9b|fig9c|fig9d|all|\\\n                sweep-elem|sweep-size|hetero|placement|cauchy|ablations]"
                );
                std::process::exit(2);
            }
        }
    }
}

//! Kill-mid-load repair benchmark: foreground tail latency vs repair
//! throughput at several rate limits.
//!
//! ```text
//! repair [--quick] [--no-json]
//! ```
//!
//! An RS(6,3) EC-FRM store runs over latency-injected `MemDisk`s (so
//! disk service time, not memcpy, is the contended resource — as on a
//! real array). One disk is wiped; foreground readers keep issuing
//! small random reads while the background `RepairManager` rebuilds the
//! lost disk. Each trial runs the pipeline at a different token-bucket
//! rate limit and records:
//!
//! * the foreground read latency distribution *during* repair (p50/p99),
//! * repair throughput (rebuilt bytes per second of wall clock), and
//! * time to full redundancy.
//!
//! The trade-off the limiter exists for is visible directly: unlimited
//! repair floods the per-disk queues and foreground p99 balloons;
//! throttled repair takes proportionally longer to restore redundancy
//! but leaves the foreground's tail close to its no-repair baseline
//! (the `baseline` row, measured degraded with repair paused). The
//! JSON lands in `BENCH_repair.json`.
//!
//! Two more rows price repair *network traffic* over a real loopback
//! cluster: `naive` fetches every source element raw, `combined` lets
//! helpers pre-sum server-side over `CombineRange` — 1/k of the wire
//! bytes at RS(6,3). `--assert-combine` turns the <0.5× ratio into a
//! hard assertion (the CI smoke gate).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ecfrm_codes::RsCode;
use ecfrm_core::{LayoutKind, Scheme};
use ecfrm_net::Cluster;
use ecfrm_sim::{DiskBackend, ThreadedArray};
use ecfrm_store::{ObjectStore, RepairConfig, RepairManager};

const ELEMENT: usize = 4096;
const DISK_LATENCY: Duration = Duration::from_micros(200);
const FG_READERS: usize = 2;
const FG_READ_ELEMENTS: u64 = 4;
const VICTIM: usize = 0;

fn scheme() -> Scheme {
    Scheme::builder(Arc::new(RsCode::vandermonde(6, 3)))
        .layout(LayoutKind::EcFrm)
        .build()
}

fn payload(stripes: usize, dps: usize) -> Vec<u8> {
    (0..stripes * dps * ELEMENT)
        .map(|i| ((i * 131 + 7) % 251) as u8)
        .collect()
}

struct Trial {
    label: String,
    rate_limit: Option<u64>,
    repair_secs: f64,
    repair_mb_per_s: f64,
    fg_reads: usize,
    fg_p50_us: u64,
    fg_p99_us: u64,
    /// Bytes the rebuilder ingested off the wire (`repair.wire_bytes`).
    wire_bytes: u64,
    /// Wall clock from first lost stripe to full redundancy.
    time_to_redundancy_ms: f64,
}

fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * p) as usize]
}

/// Foreground readers: random small reads until `stop`, per-read
/// latency in µs.
fn spawn_readers(
    store: &Arc<ObjectStore>,
    data_len: u64,
    stop: &Arc<AtomicBool>,
) -> Vec<std::thread::JoinHandle<Vec<u64>>> {
    (0..FG_READERS)
        .map(|r| {
            let store = Arc::clone(store);
            let stop = Arc::clone(stop);
            std::thread::spawn(move || {
                let mut lat = Vec::new();
                let size = FG_READ_ELEMENTS * ELEMENT as u64;
                let mut x = ((r as u64 + 1) * 0x9E37_79B9_7F4A_7C15) | 1;
                while !stop.load(Ordering::Acquire) {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let start = x % (data_len - size);
                    let t = Instant::now();
                    store
                        .get_range("obj", start, size)
                        .expect("foreground read failed");
                    lat.push(t.elapsed().as_micros() as u64);
                }
                lat
            })
        })
        .collect()
}

/// One kill-and-repair trial at `rate_limit`. Returns the trial row
/// after verifying the repaired store byte-for-byte.
fn run_trial(label: &str, rate_limit: Option<u64>, stripes: usize) -> Trial {
    let scheme = scheme();
    let dps = scheme.data_per_stripe();
    let data = payload(stripes, dps);
    let store = Arc::new(ObjectStore::with_array(
        scheme.clone(),
        ELEMENT,
        ThreadedArray::with_latency(scheme.n_disks(), DISK_LATENCY),
    ));
    store.put("obj", &data).unwrap();
    store.flush();

    // Lose the victim for real, then let the pipeline restore it while
    // the foreground hammers the store.
    store.fail_disk(VICTIM).unwrap();
    store.array().disk(VICTIM).wipe();
    let mgr = RepairManager::spawn(
        Arc::clone(&store),
        RepairConfig {
            workers: 2,
            rate_limit,
            poll: Duration::from_millis(1),
            replacer: None,
        },
    );
    let stop = Arc::new(AtomicBool::new(false));
    let readers = spawn_readers(&store, data.len() as u64, &stop);
    assert!(
        mgr.wait_idle(Duration::from_secs(600)),
        "repair did not converge at {label}: {:?}",
        mgr.progress()
    );
    stop.store(true, Ordering::Release);
    let mut lat: Vec<u64> = readers
        .into_iter()
        .flat_map(|r| r.join().expect("reader died"))
        .collect();
    lat.sort_unstable();

    // Correctness gate: never publish numbers for a repair that did not
    // actually restore the data.
    let (bytes, stats) = store.get_with_stats("obj").unwrap();
    assert_eq!(bytes, data, "{label}: repaired store returned wrong bytes");
    assert!(!stats.degraded, "{label}: store still degraded");
    assert_eq!(stats.repair_elements, 0, "{label}: reads still decoding");
    let snap = store.recorder().snapshot();
    assert_eq!(
        snap.counters.get("repair.stripes_done").copied(),
        Some(stripes as u64),
        "{label}: stripe count mismatch"
    );

    let ttr_ms = snap
        .gauges
        .get("repair.time_to_redundancy_ms")
        .map(|ms| *ms as f64)
        .unwrap_or(f64::NAN);
    let repair_secs = (ttr_ms / 1e3).max(1e-4);
    let rebuilt = snap.counters.get("repair.bytes").copied().unwrap_or(0);
    let trial = Trial {
        label: label.to_string(),
        rate_limit,
        repair_secs,
        repair_mb_per_s: rebuilt as f64 / 1e6 / repair_secs,
        fg_reads: lat.len(),
        fg_p50_us: pct(&lat, 0.50),
        fg_p99_us: pct(&lat, 0.99),
        wire_bytes: snap.counters.get("repair.wire_bytes").copied().unwrap_or(0),
        time_to_redundancy_ms: ttr_ms,
    };
    mgr.shutdown();
    trial
}

/// No-repair reference: same degraded store, pipeline paused, same
/// foreground workload for `window` — the p99 the limiter defends.
fn run_baseline(stripes: usize, window: Duration) -> Trial {
    let scheme = scheme();
    let data = payload(stripes, scheme.data_per_stripe());
    let store = Arc::new(ObjectStore::with_array(
        scheme.clone(),
        ELEMENT,
        ThreadedArray::with_latency(scheme.n_disks(), DISK_LATENCY),
    ));
    store.put("obj", &data).unwrap();
    store.flush();
    store.fail_disk(VICTIM).unwrap();
    store.array().disk(VICTIM).wipe();

    let stop = Arc::new(AtomicBool::new(false));
    let readers = spawn_readers(&store, data.len() as u64, &stop);
    std::thread::sleep(window);
    stop.store(true, Ordering::Release);
    let mut lat: Vec<u64> = readers
        .into_iter()
        .flat_map(|r| r.join().expect("reader died"))
        .collect();
    lat.sort_unstable();
    Trial {
        label: "baseline".into(),
        rate_limit: None,
        repair_secs: f64::NAN,
        repair_mb_per_s: 0.0,
        fg_reads: lat.len(),
        fg_p50_us: pct(&lat, 0.50),
        fg_p99_us: pct(&lat, 0.99),
        wire_bytes: 0,
        time_to_redundancy_ms: f64::NAN,
    }
}

/// Repair-traffic trial over a real loopback cluster: wipe the victim
/// shard and rebuild it stripe by stripe with `repair_stripe`, pricing
/// the bytes the rebuilder ingested off the wire. `combined = false`
/// fetches every source element raw (k·rows cells per stripe);
/// `combined = true` lets helpers pre-sum server-side over
/// `CombineRange`, so only `rows` sealed regions cross per stripe —
/// 1/k of the naive traffic at RS(6,3).
fn run_wire_trial(label: &str, combined: bool, stripes: usize) -> Trial {
    let scheme = scheme();
    let data = payload(stripes, scheme.data_per_stripe());
    let cluster = Cluster::spawn(scheme.n_disks()).expect("spawn loopback cluster");
    let store = ObjectStore::with_array(
        scheme.clone(),
        ELEMENT,
        ThreadedArray::from_backends(cluster.backends()),
    );
    store.set_combined_repair(combined);
    store.put("obj", &data).unwrap();
    store.flush();
    cluster.client(VICTIM).wipe();

    let t = Instant::now();
    let mut rebuilt = 0u64;
    for s in 0..stripes as u64 {
        rebuilt += store
            .repair_stripe(VICTIM, s)
            .expect("stripe repair failed")
            .bytes_written;
    }
    let elapsed = t.elapsed();

    // Correctness gate, same as the rate-limit trials.
    assert_eq!(
        store.get("obj").unwrap(),
        data,
        "{label}: repaired store returned wrong bytes"
    );
    let snap = store.recorder().snapshot();
    if combined {
        assert_eq!(
            snap.counters.get("repair.combined_stripes").copied(),
            Some(stripes as u64),
            "{label}: not every stripe took the combined path"
        );
    }
    let secs = elapsed.as_secs_f64().max(1e-9);
    Trial {
        label: label.to_string(),
        rate_limit: None,
        repair_secs: secs,
        repair_mb_per_s: rebuilt as f64 / 1e6 / secs,
        fg_reads: 0,
        fg_p50_us: 0,
        fg_p99_us: 0,
        wire_bytes: snap.counters.get("repair.wire_bytes").copied().unwrap_or(0),
        time_to_redundancy_ms: elapsed.as_secs_f64() * 1e3,
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_json = args.iter().any(|a| a == "--no-json");
    let assert_combine = args.iter().any(|a| a == "--assert-combine");
    let stripes = if quick { 96 } else { 256 };

    // Unlimited, then two throttles. Limits are on total repair traffic
    // (source reads + rebuilt writes), in bytes/second.
    let settings: &[(&str, Option<u64>)] = &[
        ("unlimited", None),
        ("40MB/s", Some(40_000_000)),
        ("10MB/s", Some(10_000_000)),
    ];

    println!(
        "repair: RS(6,3) ec-frm, {stripes} stripes x {ELEMENT} B elements, \
         disk latency {DISK_LATENCY:?}, kill disk {VICTIM} under {FG_READERS} readers"
    );
    let mut rows = vec![run_baseline(
        stripes,
        if quick {
            Duration::from_millis(250)
        } else {
            Duration::from_millis(500)
        },
    )];
    for &(label, rate) in settings {
        rows.push(run_trial(label, rate, stripes));
    }
    // Repair-traffic rows: same shape, real loopback cluster, naive raw
    // fetches vs server-side CombineRange partial sums.
    let wire_stripes = if quick { 48 } else { 128 };
    rows.push(run_wire_trial("naive", false, wire_stripes));
    rows.push(run_wire_trial("combined", true, wire_stripes));

    println!(
        "\n  {:<10} {:>12} {:>12} {:>9} {:>10} {:>10} {:>10}",
        "rate", "repair s", "repair MB/s", "fg reads", "p50 us", "p99 us", "wire MB"
    );
    for r in &rows {
        println!(
            "  {:<10} {:>12} {:>12} {:>9} {:>10} {:>10} {:>10}",
            r.label,
            if r.repair_secs.is_finite() {
                format!("{:.3}", r.repair_secs)
            } else {
                "-".into()
            },
            if r.repair_mb_per_s > 0.0 {
                format!("{:.1}", r.repair_mb_per_s)
            } else {
                "-".into()
            },
            r.fg_reads,
            r.fg_p50_us,
            r.fg_p99_us,
            if r.wire_bytes > 0 {
                format!("{:.2}", r.wire_bytes as f64 / 1e6)
            } else {
                "-".into()
            },
        );
    }
    let unlimited = rows.iter().find(|r| r.label == "unlimited").unwrap();
    let tightest = rows.iter().find(|r| r.label == "10MB/s").unwrap();
    println!(
        "\nrate limiting: p99 {} us (unlimited) -> {} us (at {}), \
         repair {:.1} MB/s -> {:.1} MB/s",
        unlimited.fg_p99_us,
        tightest.fg_p99_us,
        tightest.label,
        unlimited.repair_mb_per_s,
        tightest.repair_mb_per_s,
    );
    let naive = rows.iter().find(|r| r.label == "naive").unwrap();
    let combined = rows.iter().find(|r| r.label == "combined").unwrap();
    let ratio = combined.wire_bytes as f64 / naive.wire_bytes as f64;
    println!(
        "repair traffic: naive {:.2} MB on the wire, combined {:.2} MB \
         ({ratio:.3}x, 1/k = {:.3}) over {wire_stripes} stripes",
        naive.wire_bytes as f64 / 1e6,
        combined.wire_bytes as f64 / 1e6,
        1.0 / 6.0,
    );
    if assert_combine {
        assert!(
            2 * combined.wire_bytes < naive.wire_bytes,
            "combined repair shipped {} wire bytes, expected < 0.5x naive ({})",
            combined.wire_bytes,
            naive.wire_bytes,
        );
        println!("assert-combine: OK (combined < 0.5x naive)");
    }

    if no_json {
        return;
    }
    let mut body = String::from("{\n  \"bench\": \"repair\",\n");
    body.push_str(&format!(
        "  \"shape\": {{\"stripes\": {stripes}, \"element\": {ELEMENT}, \
         \"disk_latency_us\": {}, \"readers\": {FG_READERS}}},\n",
        DISK_LATENCY.as_micros()
    ));
    body.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"rate\": \"{}\", \"rate_limit_bytes_per_s\": {}, \
             \"repair_secs\": {}, \"repair_mb_per_s\": {}, \
             \"fg_reads\": {}, \"fg_p50_us\": {}, \"fg_p99_us\": {}, \
             \"wire_bytes\": {}, \"time_to_redundancy_ms\": {}}}{}\n",
            r.label,
            r.rate_limit
                .map(|v| v.to_string())
                .unwrap_or_else(|| "null".into()),
            json_f(r.repair_secs),
            json_f(r.repair_mb_per_s),
            r.fg_reads,
            r.fg_p50_us,
            r.fg_p99_us,
            r.wire_bytes,
            json_f(r.time_to_redundancy_ms),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write("BENCH_repair.json", &body).expect("write BENCH_repair.json");
    println!("wrote BENCH_repair.json");
}

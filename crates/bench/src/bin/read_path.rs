//! Read-path microbenchmark: per-element vs batched vs coalesced.
//!
//! ```text
//! read_path [--quick] [--no-json]
//! ```
//!
//! Reads the address pattern of EC-FRM stripe reads under RS(6,3) —
//! every disk serving one contiguous run of element offsets — through
//! three strategies:
//!
//! * **per_element** — the pre-batching read path: one `Job::Read` (and,
//!   remotely, one `GetElement` RPC) per element.
//! * **batched** — one `Job::ReadMany` per disk; remotely one `BatchGet`
//!   RPC per disk (`use_range` disabled to isolate batching).
//! * **coalesced** — batched, plus the per-disk run collapses into a
//!   single `GetRange` frame on the wire (remote only; locally the
//!   coalescing happens inside one `read_many` call either way).
//!
//! Each strategy runs over a local `MemDisk` array and over a real
//! loopback TCP cluster. The JSON lands in `BENCH_read_path.json`; the
//! CI smoke job asserts batched beats per-element on loopback.

use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ecfrm_net::{Cluster, RemoteDiskConfig};
use ecfrm_sim::{Address, ThreadedArray};

const N_DISKS: usize = 9; // RS(6,3): 6 data + 3 parity shards
const ELEMENT: usize = 4096;
const ROWS_PER_READ: u64 = 8; // elements per disk per stripe-shaped read

fn element(d: usize, o: u64) -> Vec<u8> {
    let seed = d * 1_000 + o as usize;
    (0..ELEMENT)
        .map(|i| ((i * 131 + seed) % 256) as u8)
        .collect()
}

/// The stripe-read address list: every disk serves offsets `0..rows`
/// as one ascending run, the shape EC-FRM's sequential layout produces
/// for the data rows of consecutive stripes.
fn stripe_addrs(rows: u64) -> Vec<Address> {
    let mut addrs = Vec::with_capacity(N_DISKS * rows as usize);
    for o in 0..rows {
        for d in 0..N_DISKS {
            addrs.push((d, o));
        }
    }
    addrs
}

fn populate(array: &ThreadedArray, rows: u64) {
    let items = stripe_addrs(rows)
        .into_iter()
        .map(|(d, o)| ((d, o), element(d, o)))
        .collect();
    array.write_batch(items);
}

/// Mean seconds per call of `f` after a warm-up pass.
fn measure(iters: u32, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters.div_ceil(5).max(1) {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn check(got: &[Option<Vec<u8>>], addrs: &[Address]) {
    assert_eq!(got.len(), addrs.len());
    for (e, &(d, o)) in got.iter().zip(addrs) {
        assert_eq!(e.as_deref(), Some(&element(d, o)[..]), "disk {d} off {o}");
    }
}

struct Row {
    setting: &'static str,
    strategy: &'static str,
    secs_per_read: f64,
}

impl Row {
    fn mbps(&self) -> f64 {
        (N_DISKS as u64 * ROWS_PER_READ * ELEMENT as u64) as f64 / 1e6 / self.secs_per_read
    }
}

fn bench_array(
    setting: &'static str,
    array: &ThreadedArray,
    strategies: &[&'static str],
    iters: u32,
    rows: &mut Vec<Row>,
) {
    let addrs = stripe_addrs(ROWS_PER_READ);
    // Correctness gate: never publish numbers for a path that returns
    // wrong bytes.
    check(&array.read_batch_per_element(&addrs), &addrs);
    check(&array.read_batch(&addrs), &addrs);
    for &strategy in strategies {
        let secs = match strategy {
            "per_element" => measure(iters, || {
                black_box(array.read_batch_per_element(black_box(&addrs)));
            }),
            _ => measure(iters, || {
                black_box(array.read_batch(black_box(&addrs)));
            }),
        };
        println!(
            "  {setting:<16} {strategy:<12} {:>9.1} us/read {:>9.1} MB/s",
            secs * 1e6,
            Row {
                setting,
                strategy,
                secs_per_read: secs
            }
            .mbps(),
        );
        rows.push(Row {
            setting,
            strategy,
            secs_per_read: secs,
        });
    }
}

/// One concurrency level's latency summary.
struct ConcRow {
    level: usize,
    p50_us: f64,
    p99_us: f64,
}

/// Small cells for the concurrency sweep: latency under load is about
/// request-count pipelining, not payload bandwidth.
const C_ELEMENT: usize = 64;
const C_OFFSETS: u64 = 64;

/// The concurrency axis: `level` stripe-shaped reads in flight at once
/// over the multiplexed wire — each read is one single-element
/// submission per disk, completed by the demux engine as responses
/// land. Latency is submit-to-last-completion per read, stamped in the
/// completion callback.
fn bench_concurrency(levels: &[usize]) -> Vec<ConcRow> {
    // Generous deadline: at 10k in-flight reads the *queueing* delay is
    // the thing being measured, and it must not trip the sweep.
    let cfg = RemoteDiskConfig::builder()
        .request_timeout(Duration::from_secs(30))
        .build();
    let cluster = Cluster::spawn_with(N_DISKS, &cfg).unwrap();
    let backends = cluster.backends();
    for (d, disk) in backends.iter().enumerate() {
        for o in 0..C_OFFSETS {
            let seed = d * 1_000 + o as usize;
            disk.write(
                o,
                (0..C_ELEMENT)
                    .map(|i| ((i * 131 + seed) % 256) as u8)
                    .collect(),
            );
        }
    }
    // Warm each client through mux negotiation so the sweep measures
    // steady-state submissions, not the first-use probe.
    for disk in &backends {
        assert!(disk.read(0).is_some());
    }

    let mut out = Vec::new();
    for &level in levels {
        let (tx, rx) = std::sync::mpsc::channel::<(usize, Instant)>();
        let mut submit_at = Vec::with_capacity(level);
        for i in 0..level {
            let o = i as u64 % C_OFFSETS;
            let remaining = Arc::new(AtomicUsize::new(N_DISKS));
            submit_at.push(Instant::now());
            for disk in &backends {
                let remaining = Arc::clone(&remaining);
                let tx = tx.clone();
                disk.submit_read_many(&[o]).on_complete(move |r| {
                    assert!(r[0].is_some(), "concurrency read must not fail");
                    if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                        let _ = tx.send((i, Instant::now()));
                    }
                });
            }
        }
        drop(tx);
        let mut lat_us = vec![0.0f64; level];
        for (i, done) in rx {
            lat_us[i] = done.duration_since(submit_at[i]).as_secs_f64() * 1e6;
        }
        lat_us.sort_by(f64::total_cmp);
        let p50 = lat_us[(level - 1) / 2];
        let p99 = lat_us[(((level - 1) as f64) * 0.99).round() as usize];
        println!("  concurrency {level:>6} in-flight: p50 {p50:>10.1} us   p99 {p99:>10.1} us");
        out.push(ConcRow {
            level,
            p50_us: p50,
            p99_us: p99,
        });
    }
    out
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_json = args.iter().any(|a| a == "--no-json");
    let (local_iters, remote_iters) = if quick { (200, 30) } else { (2_000, 200) };

    println!(
        "read_path: RS(6,3) stripe reads, {N_DISKS} disks x {ROWS_PER_READ} \
         elements x {ELEMENT} B"
    );
    let mut rows: Vec<Row> = Vec::new();

    // Local: thread-per-disk over MemDisk, with a small per-access
    // latency so the per-element channel chatter has something to hide.
    let local = ThreadedArray::with_latency(N_DISKS, Duration::from_micros(20));
    populate(&local, ROWS_PER_READ);
    bench_array(
        "local",
        &local,
        &["per_element", "batched"],
        local_iters,
        &mut rows,
    );

    // Loopback remote, ranges off: batching is one BatchGet per disk.
    let no_range = RemoteDiskConfig::builder()
        .low_latency()
        .use_range(false)
        .build();
    let cluster = Cluster::spawn_with(N_DISKS, &no_range).unwrap();
    let remote = ThreadedArray::from_backends(cluster.backends());
    populate(&remote, ROWS_PER_READ);
    bench_array(
        "remote",
        &remote,
        &["per_element", "batched"],
        remote_iters,
        &mut rows,
    );

    // Loopback remote, ranges on: the per-disk run ships as one GetRange.
    let ranged =
        Cluster::spawn_with(N_DISKS, &RemoteDiskConfig::builder().low_latency().build()).unwrap();
    let remote_ranged = ThreadedArray::from_backends(ranged.backends());
    populate(&remote_ranged, ROWS_PER_READ);
    bench_array(
        "remote",
        &remote_ranged,
        &["coalesced"],
        remote_iters,
        &mut rows,
    );
    let coalesced_rpcs: u64 = (0..N_DISKS)
        .map(|i| {
            ranged
                .client(i)
                .stats()
                .unwrap()
                .into_iter()
                .find(|(k, _)| k == "serve.range")
                .map(|(_, v)| v)
                .unwrap_or(0)
        })
        .sum();
    println!("  coalesced run shipped {coalesced_rpcs} GetRange frames total");

    let per_el = rows
        .iter()
        .find(|r| r.setting == "remote" && r.strategy == "per_element")
        .unwrap()
        .secs_per_read;
    let batched = rows
        .iter()
        .find(|r| r.setting == "remote" && r.strategy == "batched")
        .unwrap()
        .secs_per_read;
    let speedup = per_el / batched;
    println!("\nloopback batched vs per-element speedup: {speedup:.2}x");

    // The concurrency axis: in-flight stripe reads over the mux engine.
    println!("\nconcurrency sweep ({C_ELEMENT} B cells, mux transport):");
    let levels: &[usize] = if quick {
        &[1, 16, 128]
    } else {
        &[1, 64, 512, 2048, 10_000]
    };
    let conc = bench_concurrency(levels);

    if no_json {
        return;
    }
    let mut body = String::from("{\n  \"bench\": \"read_path\",\n");
    body.push_str(&format!(
        "  \"shape\": {{\"disks\": {N_DISKS}, \"rows\": {ROWS_PER_READ}, \"element\": {ELEMENT}}},\n"
    ));
    body.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"setting\": \"{}\", \"strategy\": \"{}\", \"us_per_read\": {}, \"mb_per_s\": {}}}{}\n",
            r.setting,
            r.strategy,
            json_f(r.secs_per_read * 1e6),
            json_f(r.mbps()),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    body.push_str("  ],\n");
    body.push_str("  \"concurrency\": [\n");
    for (i, c) in conc.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"level\": {}, \"p50_us\": {}, \"p99_us\": {}}}{}\n",
            c.level,
            json_f(c.p50_us),
            json_f(c.p99_us),
            if i + 1 == conc.len() { "" } else { "," }
        ));
    }
    body.push_str("  ],\n");
    body.push_str(&format!(
        "  \"loopback_batched_speedup\": {}\n}}\n",
        json_f(speedup)
    ));
    std::fs::write("BENCH_read_path.json", &body).expect("write BENCH_read_path.json");
    println!("wrote BENCH_read_path.json");
}

//! Multi-tenant front-door benchmark: QoS admission and the
//! parity-aware read cache under a zipfian mixed workload.
//!
//! ```text
//! multitenant [--quick] [--no-json] [--assert-fairness]
//! ```
//!
//! An RS(6,3) EC-FRM store runs over latency-injected `MemDisk`s (disk
//! service time, not memcpy, is the contended resource), with a
//! [`FrontDoor`] on top: a latency-class tenant (`web`) reads a zipfian
//! hot set of small objects while a bulk-class tenant (`scan`) cycles
//! large sequential reads. Three phases:
//!
//! * `solo` — the web tenant alone: the latency baseline.
//! * `mixed-off` — scan floods with admission *off*: the bulk tenant
//!   is free to fill every disk queue and the web tail balloons.
//! * `mixed-on` — same flood with admission *on*: scan is held to its
//!   token-bucket rate (queued up to the bulk deadline, then
//!   rejected), and the web tail must come back near its solo
//!   baseline.
//!
//! Each phase reports per-tenant p50/p99, per-tenant throughput, the
//! fairness ratio (max/min tenant throughput), and the cache hit rate.
//! Every read is compared byte-for-byte against a reference copy —
//! wrong bytes abort the bench. `--assert-fairness` turns the headline
//! claims into hard assertions (the CI smoke gate): with admission on,
//! web p99 stays within 2x its solo p99 and the zipf-hot cache serves
//! more than half the element lookups. The JSON lands in
//! `BENCH_multitenant.json`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ecfrm_codes::RsCode;
use ecfrm_core::{LayoutKind, Scheme};
use ecfrm_sim::ThreadedArray;
use ecfrm_store::{FrontConfig, FrontDoor, ObjectStore, QosClass, StoreError, TenantSpec};

const ELEMENT: usize = 4096;
const DISK_LATENCY: Duration = Duration::from_micros(200);
const WEB_READERS: usize = 2;
const SCAN_READERS: usize = 3;
const WEB_OBJECTS: usize = 256;
const WEB_OBJECT_BYTES: usize = 32 * 1024;
/// Scan object small enough to stay cache-resident, so the bulk loop
/// measures admission (not cache-pollution) effects.
const SCAN_OBJECT_BYTES: usize = 512 * 1024;
/// Bulk read size: one admitted chunk occupies each disk for only a
/// couple of element services, so a *throttled* scan cannot park a
/// whole stripe's worth of work in front of a latency read.
const SCAN_CHUNK: usize = 64 * 1024;
/// How long a bulk reader backs off after a rejection. Spinning on
/// rejects would turn the limiter into a CPU-contention bench.
const SCAN_BACKOFF: Duration = Duration::from_millis(2);
/// Cache sized at ~25% of the web data set: the zipf head fits, the
/// tail misses — hit rate is a property of the skew, not of an
/// everything-fits cache.
const CACHE_BYTES: usize = 2 * 1024 * 1024;
/// Bulk budget: ~1% of the array's aggregate service rate, so a
/// throttled scan is negligible interference by construction.
const SCAN_RATE: u64 = 2_000_000;
const ZIPF_S: f64 = 1.2;

fn scheme() -> Scheme {
    Scheme::builder(Arc::new(RsCode::vandermonde(6, 3)))
        .layout(LayoutKind::EcFrm)
        .build()
}

fn blob(len: usize, seed: usize) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 131 + seed * 17 + 7) % 251) as u8)
        .collect()
}

fn pct(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * p) as usize]
}

/// Cumulative zipf(s) weights over `n` ranks, for inverse sampling.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf: Vec<f64> = (1..=n)
        .map(|r| {
            acc += 1.0 / (r as f64).powf(s);
            acc
        })
        .collect();
    for w in &mut cdf {
        *w /= acc;
    }
    cdf
}

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

struct Phase {
    label: String,
    web_reads: usize,
    web_p50_us: u64,
    web_p99_us: u64,
    web_mbps: f64,
    scan_ok: u64,
    scan_throttled: u64,
    scan_delayed: u64,
    scan_mbps: f64,
    fairness: f64,
    cache_hit_rate: f64,
}

fn counter(front: &FrontDoor, name: &str) -> u64 {
    front
        .store()
        .recorder()
        .snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

/// One phase: `scan_threads` bulk readers flooding (0 = solo) while the
/// web readers sample the zipf hot set, all for `window`. Wrong bytes
/// panic on the spot.
fn run_phase(
    front: &Arc<FrontDoor>,
    label: &str,
    window: Duration,
    scan_threads: usize,
    admission: bool,
    web_data: &Arc<Vec<Vec<u8>>>,
    scan_data: &Arc<Vec<u8>>,
) -> Phase {
    front.set_admission(admission);
    let (hit0, miss0) = front.cache_stats();
    let delayed0 = counter(front, "tenant.scan.delayed");
    let stop = Arc::new(AtomicBool::new(false));

    let scanners: Vec<_> = (0..scan_threads)
        .map(|_| {
            let front = Arc::clone(front);
            let stop = Arc::clone(&stop);
            let want = Arc::clone(scan_data);
            std::thread::spawn(move || {
                let (mut ok, mut throttled, mut bytes) = (0u64, 0u64, 0u64);
                let mut off = 0usize;
                while !stop.load(Ordering::Acquire) {
                    match front.read_range("scan", "bulk", off as u64, SCAN_CHUNK as u64) {
                        Ok(b) => {
                            assert_eq!(
                                b,
                                want[off..off + SCAN_CHUNK],
                                "scan read returned wrong bytes"
                            );
                            ok += 1;
                            bytes += b.len() as u64;
                            off = (off + SCAN_CHUNK) % SCAN_OBJECT_BYTES;
                        }
                        Err(StoreError::Throttled(_)) => {
                            throttled += 1;
                            std::thread::sleep(SCAN_BACKOFF);
                        }
                        Err(e) => panic!("scan read failed: {e}"),
                    }
                }
                (ok, throttled, bytes)
            })
        })
        .collect();

    let readers: Vec<_> = (0..WEB_READERS)
        .map(|r| {
            let front = Arc::clone(front);
            let stop = Arc::clone(&stop);
            let data = Arc::clone(web_data);
            std::thread::spawn(move || {
                let cdf = zipf_cdf(WEB_OBJECTS, ZIPF_S);
                let mut rng = XorShift(((r as u64 + 1) * 0x9E37_79B9_7F4A_7C15) | 1);
                let mut lat = Vec::new();
                let mut bytes = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let u = rng.unit();
                    let obj = cdf.partition_point(|&c| c < u).min(WEB_OBJECTS - 1);
                    let t = Instant::now();
                    let b = front
                        .read("web", &format!("o{obj}"))
                        .expect("web read failed");
                    lat.push(t.elapsed().as_micros() as u64);
                    assert_eq!(b, data[obj], "web read returned wrong bytes");
                    bytes += b.len() as u64;
                }
                (lat, bytes)
            })
        })
        .collect();

    std::thread::sleep(window);
    stop.store(true, Ordering::Release);
    let mut scan_ok = 0u64;
    let mut scan_throttled = 0u64;
    let mut scan_bytes = 0u64;
    for s in scanners {
        let (ok, th, by) = s.join().expect("scan thread died");
        scan_ok += ok;
        scan_throttled += th;
        scan_bytes += by;
    }
    let mut lat = Vec::new();
    let mut web_bytes = 0u64;
    for r in readers {
        let (l, b) = r.join().expect("web thread died");
        lat.extend(l);
        web_bytes += b;
    }
    lat.sort_unstable();

    let secs = window.as_secs_f64();
    let (hit1, miss1) = front.cache_stats();
    let (dh, dm) = (hit1 - hit0, miss1 - miss0);
    let web_mbps = web_bytes as f64 / 1e6 / secs;
    let scan_mbps = scan_bytes as f64 / 1e6 / secs;
    let fairness = if scan_threads > 0 && web_mbps > 0.0 && scan_mbps > 0.0 {
        web_mbps.max(scan_mbps) / web_mbps.min(scan_mbps)
    } else {
        f64::NAN
    };
    Phase {
        label: label.to_string(),
        web_reads: lat.len(),
        web_p50_us: pct(&lat, 0.50),
        web_p99_us: pct(&lat, 0.99),
        web_mbps,
        scan_ok,
        scan_throttled,
        scan_delayed: counter(front, "tenant.scan.delayed") - delayed0,
        scan_mbps,
        fairness,
        cache_hit_rate: if dh + dm > 0 {
            dh as f64 / (dh + dm) as f64
        } else {
            0.0
        },
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_json = args.iter().any(|a| a == "--no-json");
    let assert_fairness = args.iter().any(|a| a == "--assert-fairness");
    let window = if quick {
        Duration::from_millis(600)
    } else {
        Duration::from_millis(2000)
    };

    let sch = scheme();
    let store = Arc::new(ObjectStore::with_array(
        sch.clone(),
        ELEMENT,
        ThreadedArray::with_latency(sch.n_disks(), DISK_LATENCY),
    ));
    let front = FrontDoor::new(
        store,
        FrontConfig::builder().cache_bytes(CACHE_BYTES).build(),
    );
    front.register_tenant(TenantSpec::new("web", QosClass::Latency));
    front.register_tenant(TenantSpec::new("scan", QosClass::Bulk).rate(SCAN_RATE));

    // Ingest: 256 x 32 KiB web objects (the zipf universe) and one
    // 512 KiB scan object.
    let web_data: Arc<Vec<Vec<u8>>> = Arc::new(
        (0..WEB_OBJECTS)
            .map(|i| blob(WEB_OBJECT_BYTES, i))
            .collect(),
    );
    for (i, d) in web_data.iter().enumerate() {
        front.put("web", &format!("o{i}"), d).expect("web ingest");
    }
    let scan_data = Arc::new(blob(SCAN_OBJECT_BYTES, 9001));
    front.put("scan", "bulk", &scan_data).expect("scan ingest");
    front.store().flush();

    println!(
        "multitenant: {} over {} disks ({DISK_LATENCY:?} service time), \
         {WEB_OBJECTS} x {WEB_OBJECT_BYTES} B zipf(s={ZIPF_S}) hot set, \
         {} B cache, scan budget {:.1} MB/s, {window:?} per phase",
        sch.name(),
        sch.n_disks(),
        CACHE_BYTES,
        SCAN_RATE as f64 / 1e6,
    );

    let rows = vec![
        run_phase(&front, "solo", window, 0, true, &web_data, &scan_data),
        run_phase(
            &front,
            "mixed-off",
            window,
            SCAN_READERS,
            false,
            &web_data,
            &scan_data,
        ),
        run_phase(
            &front,
            "mixed-on",
            window,
            SCAN_READERS,
            true,
            &web_data,
            &scan_data,
        ),
    ];

    println!(
        "\n  {:<10} {:>9} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>6}",
        "phase",
        "web rd",
        "p50 us",
        "p99 us",
        "web MB/s",
        "scan ok",
        "throttld",
        "scan MB/s",
        "fairness",
        "hit%"
    );
    for r in &rows {
        println!(
            "  {:<10} {:>9} {:>8} {:>8} {:>9.1} {:>9} {:>9} {:>9.1} {:>9} {:>6.1}",
            r.label,
            r.web_reads,
            r.web_p50_us,
            r.web_p99_us,
            r.web_mbps,
            r.scan_ok,
            r.scan_throttled,
            r.scan_mbps,
            if r.fairness.is_finite() {
                format!("{:.1}", r.fairness)
            } else {
                "-".into()
            },
            r.cache_hit_rate * 100.0,
        );
    }

    let solo = &rows[0];
    let off = &rows[1];
    let on = &rows[2];
    println!(
        "\nadmission: web p99 {} us solo -> {} us under unthrottled flood -> {} us throttled \
         (scan held to {:.1} MB/s, {} delayed, {} rejected)",
        solo.web_p99_us,
        off.web_p99_us,
        on.web_p99_us,
        on.scan_mbps,
        on.scan_delayed,
        on.scan_throttled,
    );
    println!(
        "cache: {:.1}% hit rate on the zipf-hot set (admission-on phase)",
        on.cache_hit_rate * 100.0
    );
    if assert_fairness {
        assert!(
            on.web_p99_us <= 2 * solo.web_p99_us.max(500),
            "admission failed to defend the latency tenant: p99 {} us vs solo {} us",
            on.web_p99_us,
            solo.web_p99_us,
        );
        assert!(
            on.cache_hit_rate > 0.5,
            "zipf-hot cache hit rate {:.1}% <= 50%",
            on.cache_hit_rate * 100.0
        );
        assert!(
            on.scan_throttled + on.scan_delayed > 0,
            "the flood never hit the limiter — the phase proves nothing"
        );
        println!("assert-fairness: OK (p99 within 2x solo, cache hit rate > 50%)");
    }

    if no_json {
        return;
    }
    let mut body = String::from("{\n  \"bench\": \"multitenant\",\n");
    body.push_str(&format!(
        "  \"shape\": {{\"objects\": {WEB_OBJECTS}, \"object_bytes\": {WEB_OBJECT_BYTES}, \
         \"zipf_s\": {ZIPF_S}, \"cache_bytes\": {CACHE_BYTES}, \
         \"scan_rate_bytes_per_s\": {SCAN_RATE}, \"element\": {ELEMENT}, \
         \"disk_latency_us\": {}, \"web_readers\": {WEB_READERS}, \
         \"scan_readers\": {SCAN_READERS}}},\n",
        DISK_LATENCY.as_micros()
    ));
    body.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"phase\": \"{}\", \"web_reads\": {}, \"web_p50_us\": {}, \
             \"web_p99_us\": {}, \"web_mb_per_s\": {}, \"scan_ok\": {}, \
             \"scan_throttled\": {}, \"scan_delayed\": {}, \"scan_mb_per_s\": {}, \
             \"fairness_max_over_min\": {}, \"cache_hit_rate\": {}}}{}\n",
            r.label,
            r.web_reads,
            r.web_p50_us,
            r.web_p99_us,
            json_f(r.web_mbps),
            r.scan_ok,
            r.scan_throttled,
            r.scan_delayed,
            json_f(r.scan_mbps),
            json_f(r.fairness),
            json_f(r.cache_hit_rate),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    body.push_str("  ]\n}\n");
    std::fs::write("BENCH_multitenant.json", &body).expect("write BENCH_multitenant.json");
    println!("wrote BENCH_multitenant.json");
}

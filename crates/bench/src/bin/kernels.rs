//! GF region-kernel microbenchmark: MB/s for every compiled backend ×
//! region size, plus the fused multi-parity encode kernel, emitted both
//! as a console table and as machine-readable `BENCH_kernels.json`.
//!
//! ```text
//! kernels [--quick] [--no-json]
//! ```
//!
//! The JSON is what the README's kernel-throughput table and the CI
//! smoke job consume. `speedup_mul_add_64k` maps each backend to its
//! `mul_add_region` throughput at 64 KiB relative to the scalar
//! product-row baseline — the headline number of the split-table
//! rework.

use std::hint::black_box;
use std::time::{Duration, Instant};

use ecfrm_gf::kernel::{self, Kernel};
use ecfrm_gf::{region, region16};

const SIZES: &[usize] = &[4 * 1024, 64 * 1024, 1024 * 1024];
const SPEEDUP_LEN: usize = 64 * 1024;

/// One named benchmark closure: `(op label, body)`.
type Op = (&'static str, Box<dyn FnMut()>);

struct Row {
    backend: &'static str,
    op: &'static str,
    len: usize,
    mbps: f64,
}

fn buf(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 131 + seed as usize * 7 + 1) % 256) as u8)
        .collect()
}

/// Mean seconds per iteration of `f` after a short warm-up.
fn measure(budget: Duration, mut f: impl FnMut()) -> f64 {
    let warm = Instant::now();
    while warm.elapsed() < budget / 5 {
        f();
        black_box(());
    }
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < budget && iters < 10_000_000 {
        f();
        black_box(());
        iters += 1;
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn mbps(bytes: usize, secs_per_iter: f64) -> f64 {
    bytes as f64 / 1e6 / secs_per_iter
}

fn bench_backend(k: &'static Kernel, budget: Duration, rows: &mut Vec<Row>) {
    for &len in SIZES {
        let src = buf(len, 1);
        let mut dst = buf(len, 2);
        let ops: [Op; 4] = [
            (
                "mul_region",
                Box::new({
                    let src = src.clone();
                    let mut dst = dst.clone();
                    move || k.mul_region8(0x1D, &src, &mut dst)
                }),
            ),
            (
                "mul_add_region",
                Box::new({
                    let src = src.clone();
                    let mut dst = dst.clone();
                    move || k.mul_add_region8(0x1D, &src, &mut dst)
                }),
            ),
            (
                "mul_region16",
                Box::new({
                    let src = src.clone();
                    let mut dst = dst.clone();
                    move || k.mul_region16(0x1234, &src, &mut dst)
                }),
            ),
            (
                "mul_add_region16",
                Box::new({
                    let src = src.clone();
                    move || k.mul_add_region16(0x1234, &src, &mut dst)
                }),
            ),
        ];
        for (op, mut f) in ops {
            let secs = measure(budget, &mut f);
            let rate = mbps(len, secs);
            println!("  {:<10} {op:<18} {len:>8} B {rate:>10.0} MB/s", k.name);
            rows.push(Row {
                backend: k.name,
                op,
                len,
                mbps: rate,
            });
        }
    }
}

/// Fused multi-parity encode vs m independent dot passes, on the active
/// (dispatched) backend.
fn bench_fused(budget: Duration) -> (usize, usize, usize, f64, f64) {
    let (kk, m, len) = (6usize, 3usize, SPEEDUP_LEN);
    let srcs: Vec<Vec<u8>> = (0..kk).map(|i| buf(len, 10 + i as u8)).collect();
    let src_refs: Vec<&[u8]> = srcs.iter().map(Vec::as_slice).collect();
    let rows: Vec<Vec<u8>> = (0..m)
        .map(|r| {
            (0..kk)
                .map(|i| ((r * 31 + i * 7 + 2) % 255) as u8)
                .collect()
        })
        .collect();
    let row_refs: Vec<&[u8]> = rows.iter().map(Vec::as_slice).collect();
    let bytes = kk * len; // source bytes streamed per encode pass

    let mut outs: Vec<Vec<u8>> = (0..m).map(|_| vec![0u8; len]).collect();
    let fused_secs = measure(budget, || {
        let mut out_refs: Vec<&mut [u8]> = outs.iter_mut().map(Vec::as_mut_slice).collect();
        region::dot_region_multi(&row_refs, &src_refs, &mut out_refs);
    });
    let fused = mbps(bytes, fused_secs);

    let mut outs2: Vec<Vec<u8>> = (0..m).map(|_| vec![0u8; len]).collect();
    let indep_secs = measure(budget, || {
        for (row, out) in row_refs.iter().zip(outs2.iter_mut()) {
            region::dot_region(row, &src_refs, out);
        }
    });
    let indep = mbps(bytes, indep_secs);
    println!(
        "  fused dot_region_multi k={kk} m={m} {len} B: {fused:>8.0} MB/s  (m independent dots: {indep:.0} MB/s)"
    );
    (kk, m, len, fused, indep)
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_json = args.iter().any(|a| a == "--no-json");
    let budget = if quick {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(150)
    };

    let active = kernel::active();
    println!("active kernel backend: {}", active.name);
    println!();

    let mut rows: Vec<Row> = Vec::new();
    for k in kernel::backends() {
        if !k.is_supported() {
            println!("  {:<10} (unsupported on this CPU — skipped)", k.name);
            continue;
        }
        bench_backend(k, budget, &mut rows);
    }
    println!();
    let (fk, fm, flen, fused, indep) = bench_fused(budget);

    // Per-backend speedup vs the scalar baseline: mul_add_region @ 64 KiB.
    let scalar_rate = rows
        .iter()
        .find(|r| r.backend == "scalar" && r.op == "mul_add_region" && r.len == SPEEDUP_LEN)
        .map(|r| r.mbps)
        .unwrap_or(f64::NAN);
    let speedups: Vec<(&'static str, f64)> = rows
        .iter()
        .filter(|r| r.op == "mul_add_region" && r.len == SPEEDUP_LEN)
        .map(|r| (r.backend, r.mbps / scalar_rate))
        .collect();
    println!();
    println!("mul_add_region speedup vs scalar @ 64 KiB:");
    for (name, s) in &speedups {
        println!("  {name:<10} {s:>6.2}x");
    }

    // A quick sanity roundtrip so a broken kernel never publishes numbers:
    // every supported backend must agree with the scalar reference here.
    let probe_src = buf(4097, 3);
    let mut want = vec![0u8; probe_src.len()];
    region::reference::mul_region(0x1D, &probe_src, &mut want);
    for k in kernel::backends().iter().filter(|k| k.is_supported()) {
        let mut got = vec![0u8; probe_src.len()];
        k.mul_region8(0x1D, &probe_src, &mut got);
        assert_eq!(got, want, "backend {} disagrees with reference", k.name);
    }
    let mut want16 = vec![0u8; 4096];
    region16::reference::mul_region16(0x1234, &probe_src[..4096], &mut want16);
    for k in kernel::backends().iter().filter(|k| k.is_supported()) {
        let mut got = vec![0u8; 4096];
        k.mul_region16(0x1234, &probe_src[..4096], &mut got);
        assert_eq!(got, want16, "backend {} (w=16) disagrees", k.name);
    }

    if no_json {
        return;
    }
    let mut body = String::from("{\n  \"bench\": \"kernels\",\n");
    body.push_str(&format!("  \"active\": \"{}\",\n", active.name));
    body.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"backend\": \"{}\", \"op\": \"{}\", \"len\": {}, \"mb_per_s\": {}}}{}\n",
            r.backend,
            r.op,
            r.len,
            json_f(r.mbps),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    body.push_str("  ],\n");
    body.push_str(&format!(
        "  \"fused\": {{\"k\": {fk}, \"m\": {fm}, \"len\": {flen}, \"dot_region_multi_mb_per_s\": {}, \"independent_dots_mb_per_s\": {}}},\n",
        json_f(fused),
        json_f(indep)
    ));
    body.push_str("  \"speedup_mul_add_64k\": {");
    for (i, (name, s)) in speedups.iter().enumerate() {
        body.push_str(&format!(
            "\"{name}\": {}{}",
            json_f(*s),
            if i + 1 == speedups.len() { "" } else { ", " }
        ));
    }
    body.push_str("}\n}\n");
    std::fs::write("BENCH_kernels.json", &body).expect("write BENCH_kernels.json");
    println!("\nwrote BENCH_kernels.json");
}

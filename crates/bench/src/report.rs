//! Text-table rendering of experiment results, with the gain percentages
//! the paper quotes ("EC-FRM-RS gains 19.2% to 33.9% higher read speed…").

use crate::experiment::{DegradedResult, NormalResult};

/// Percentage by which `new` exceeds `base`.
pub fn gain_pct(new: f64, base: f64) -> f64 {
    assert!(base > 0.0, "gain against non-positive baseline");
    (new / base - 1.0) * 100.0
}

/// Render a Figure-8-style table: one row per parameter set, columns =
/// the three forms' speeds plus EC-FRM gains.
pub fn normal_table(title: &str, rows: &[(String, [NormalResult; 3])]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>14} {:>12} {:>12}\n",
        "params", "standard", "rotated", "EC-FRM", "vs std %", "vs rot %"
    ));
    for (label, [std, rot, ec]) in rows {
        out.push_str(&format!(
            "{:<12} {:>12.1} {:>12.1} {:>14.1} {:>+12.1} {:>+12.1}\n",
            label,
            std.speed_mb_s,
            rot.speed_mb_s,
            ec.speed_mb_s,
            gain_pct(ec.speed_mb_s, std.speed_mb_s),
            gain_pct(ec.speed_mb_s, rot.speed_mb_s),
        ));
    }
    out
}

/// Render a Figure-9(c)/(d)-style degraded-speed table.
pub fn degraded_speed_table(title: &str, rows: &[(String, [DegradedResult; 3])]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>14} {:>12} {:>12}\n",
        "params", "standard", "rotated", "EC-FRM", "vs std %", "vs rot %"
    ));
    for (label, [std, rot, ec]) in rows {
        out.push_str(&format!(
            "{:<12} {:>12.1} {:>12.1} {:>14.1} {:>+12.1} {:>+12.1}\n",
            label,
            std.speed_mb_s,
            rot.speed_mb_s,
            ec.speed_mb_s,
            gain_pct(ec.speed_mb_s, std.speed_mb_s),
            gain_pct(ec.speed_mb_s, rot.speed_mb_s),
        ));
    }
    out
}

/// Render a Figure-9(a)/(b)-style degraded-cost table.
pub fn degraded_cost_table(title: &str, rows: &[(String, [DegradedResult; 3])]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>14} {:>14}\n",
        "params", "standard", "rotated", "EC-FRM", "spread %"
    ));
    for (label, [std, rot, ec]) in rows {
        let max = std.cost.max(rot.cost).max(ec.cost);
        let min = std.cost.min(rot.cost).min(ec.cost);
        out.push_str(&format!(
            "{:<12} {:>12.4} {:>12.4} {:>14.4} {:>14.2}\n",
            label,
            std.cost,
            rot.cost,
            ec.cost,
            (max / min - 1.0) * 100.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nr(name: &str, speed: f64) -> NormalResult {
        NormalResult {
            scheme: name.into(),
            speed_mb_s: speed,
            mean_max_load: 1.0,
            mean_disks_touched: 5.0,
        }
    }

    fn dr(name: &str, speed: f64, cost: f64) -> DegradedResult {
        DegradedResult {
            scheme: name.into(),
            speed_mb_s: speed,
            cost,
            mean_max_load: 1.0,
        }
    }

    #[test]
    fn gain_math() {
        assert!((gain_pct(120.0, 100.0) - 20.0).abs() < 1e-12);
        assert!((gain_pct(90.0, 100.0) + 10.0).abs() < 1e-12);
    }

    #[test]
    fn tables_render_all_rows() {
        let rows = vec![
            (
                "(6,3)".to_string(),
                [nr("RS", 100.0), nr("R-RS", 110.0), nr("EC", 130.0)],
            ),
            (
                "(8,4)".to_string(),
                [nr("RS", 90.0), nr("R-RS", 95.0), nr("EC", 120.0)],
            ),
        ];
        let t = normal_table("Fig 8(a)", &rows);
        assert!(t.contains("(6,3)"));
        assert!(t.contains("(8,4)"));
        assert!(t.contains("+30.0"));

        let drows = vec![(
            "(6,2,2)".to_string(),
            [
                dr("LRC", 80.0, 1.10),
                dr("R-LRC", 85.0, 1.11),
                dr("EC", 90.0, 1.105),
            ],
        )];
        assert!(degraded_speed_table("Fig 9(d)", &drows).contains("(6,2,2)"));
        assert!(degraded_cost_table("Fig 9(b)", &drows).contains("1.1000"));
    }

    #[test]
    #[should_panic]
    fn gain_against_zero_panics() {
        gain_pct(1.0, 0.0);
    }
}

//! Text-table rendering of experiment results, with the gain percentages
//! the paper quotes ("EC-FRM-RS gains 19.2% to 33.9% higher read speed…").

use crate::experiment::{DegradedResult, NormalResult, TailStats};
use ecfrm_obs::json;

/// Percentage by which `new` exceeds `base`.
pub fn gain_pct(new: f64, base: f64) -> f64 {
    assert!(base > 0.0, "gain against non-positive baseline");
    (new / base - 1.0) * 100.0
}

/// Render a Figure-8-style table: one row per parameter set, columns =
/// the three forms' speeds plus EC-FRM gains and the cumulative
/// load-imbalance (max/mean disk load) of the standard vs EC-FRM forms.
pub fn normal_table(title: &str, rows: &[(String, [NormalResult; 3])]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>14} {:>12} {:>12} {:>9} {:>9}\n",
        "params", "standard", "rotated", "EC-FRM", "vs std %", "vs rot %", "imb std", "imb EC"
    ));
    for (label, [std, rot, ec]) in rows {
        out.push_str(&format!(
            "{:<12} {:>12.1} {:>12.1} {:>14.1} {:>+12.1} {:>+12.1} {:>9.3} {:>9.3}\n",
            label,
            std.speed_mb_s,
            rot.speed_mb_s,
            ec.speed_mb_s,
            gain_pct(ec.speed_mb_s, std.speed_mb_s),
            gain_pct(ec.speed_mb_s, rot.speed_mb_s),
            std.tail.load_imbalance,
            ec.tail.load_imbalance,
        ));
    }
    out
}

fn tail_fields(tail: &TailStats) -> Vec<(String, String)> {
    vec![
        ("p50_ms".into(), json::number(tail.p50_ms)),
        ("p95_ms".into(), json::number(tail.p95_ms)),
        ("p99_ms".into(), json::number(tail.p99_ms)),
        ("load_imbalance".into(), json::number(tail.load_imbalance)),
    ]
}

fn row_json(label: &str, schemes: Vec<String>) -> String {
    json::object(&[
        ("params".into(), json::string(label)),
        ("schemes".into(), format!("[{}]", schemes.join(","))),
    ])
}

/// JSON report of a Figure-8-style normal-read run: per parameter set,
/// each form's speed plus tail-latency and load-imbalance columns.
pub fn normal_json(figure: &str, rows: &[(String, [NormalResult; 3])]) -> String {
    let rows: Vec<String> = rows
        .iter()
        .map(|(label, forms)| {
            let schemes = forms
                .iter()
                .map(|r| {
                    let mut fields = vec![
                        ("scheme".into(), json::string(&r.scheme)),
                        ("speed_mb_s".into(), json::number(r.speed_mb_s)),
                        ("mean_max_load".into(), json::number(r.mean_max_load)),
                        (
                            "mean_disks_touched".into(),
                            json::number(r.mean_disks_touched),
                        ),
                    ];
                    fields.extend(tail_fields(&r.tail));
                    json::object(&fields)
                })
                .collect();
            row_json(label, schemes)
        })
        .collect();
    json::object(&[
        ("figure".into(), json::string(figure)),
        ("rows".into(), format!("[{}]", rows.join(","))),
    ])
}

/// JSON report of a Figure-9-style degraded-read run.
pub fn degraded_json(figure: &str, rows: &[(String, [DegradedResult; 3])]) -> String {
    let rows: Vec<String> = rows
        .iter()
        .map(|(label, forms)| {
            let schemes = forms
                .iter()
                .map(|r| {
                    let mut fields = vec![
                        ("scheme".into(), json::string(&r.scheme)),
                        ("speed_mb_s".into(), json::number(r.speed_mb_s)),
                        ("cost".into(), json::number(r.cost)),
                        ("mean_max_load".into(), json::number(r.mean_max_load)),
                    ];
                    fields.extend(tail_fields(&r.tail));
                    json::object(&fields)
                })
                .collect();
            row_json(label, schemes)
        })
        .collect();
    json::object(&[
        ("figure".into(), json::string(figure)),
        ("rows".into(), format!("[{}]", rows.join(","))),
    ])
}

/// Render a Figure-9(c)/(d)-style degraded-speed table.
pub fn degraded_speed_table(title: &str, rows: &[(String, [DegradedResult; 3])]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>14} {:>12} {:>12}\n",
        "params", "standard", "rotated", "EC-FRM", "vs std %", "vs rot %"
    ));
    for (label, [std, rot, ec]) in rows {
        out.push_str(&format!(
            "{:<12} {:>12.1} {:>12.1} {:>14.1} {:>+12.1} {:>+12.1}\n",
            label,
            std.speed_mb_s,
            rot.speed_mb_s,
            ec.speed_mb_s,
            gain_pct(ec.speed_mb_s, std.speed_mb_s),
            gain_pct(ec.speed_mb_s, rot.speed_mb_s),
        ));
    }
    out
}

/// Render a Figure-9(a)/(b)-style degraded-cost table.
pub fn degraded_cost_table(title: &str, rows: &[(String, [DegradedResult; 3])]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>14} {:>14}\n",
        "params", "standard", "rotated", "EC-FRM", "spread %"
    ));
    for (label, [std, rot, ec]) in rows {
        let max = std.cost.max(rot.cost).max(ec.cost);
        let min = std.cost.min(rot.cost).min(ec.cost);
        out.push_str(&format!(
            "{:<12} {:>12.4} {:>12.4} {:>14.4} {:>14.2}\n",
            label,
            std.cost,
            rot.cost,
            ec.cost,
            (max / min - 1.0) * 100.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tail() -> TailStats {
        TailStats {
            p50_ms: 10.0,
            p95_ms: 20.0,
            p99_ms: 30.0,
            load_imbalance: 1.25,
        }
    }

    fn nr(name: &str, speed: f64) -> NormalResult {
        NormalResult {
            scheme: name.into(),
            speed_mb_s: speed,
            mean_max_load: 1.0,
            mean_disks_touched: 5.0,
            tail: tail(),
        }
    }

    fn dr(name: &str, speed: f64, cost: f64) -> DegradedResult {
        DegradedResult {
            scheme: name.into(),
            speed_mb_s: speed,
            cost,
            mean_max_load: 1.0,
            tail: tail(),
        }
    }

    #[test]
    fn gain_math() {
        assert!((gain_pct(120.0, 100.0) - 20.0).abs() < 1e-12);
        assert!((gain_pct(90.0, 100.0) + 10.0).abs() < 1e-12);
    }

    #[test]
    fn tables_render_all_rows() {
        let rows = vec![
            (
                "(6,3)".to_string(),
                [nr("RS", 100.0), nr("R-RS", 110.0), nr("EC", 130.0)],
            ),
            (
                "(8,4)".to_string(),
                [nr("RS", 90.0), nr("R-RS", 95.0), nr("EC", 120.0)],
            ),
        ];
        let t = normal_table("Fig 8(a)", &rows);
        assert!(t.contains("(6,3)"));
        assert!(t.contains("(8,4)"));
        assert!(t.contains("+30.0"));

        let drows = vec![(
            "(6,2,2)".to_string(),
            [
                dr("LRC", 80.0, 1.10),
                dr("R-LRC", 85.0, 1.11),
                dr("EC", 90.0, 1.105),
            ],
        )];
        assert!(degraded_speed_table("Fig 9(d)", &drows).contains("(6,2,2)"));
        assert!(degraded_cost_table("Fig 9(b)", &drows).contains("1.1000"));
    }

    #[test]
    fn json_reports_carry_tail_and_imbalance_columns() {
        let rows = vec![(
            "(6,3)".to_string(),
            [nr("RS", 100.0), nr("R-RS", 110.0), nr("EC", 130.0)],
        )];
        let j = normal_json("fig8a", &rows);
        for key in [
            "\"figure\":\"fig8a\"",
            "\"params\":\"(6,3)\"",
            "\"speed_mb_s\":100",
            "\"p50_ms\":10",
            "\"p99_ms\":30",
            "\"load_imbalance\":1.25",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }

        let drows = vec![(
            "(6,2,2)".to_string(),
            [
                dr("LRC", 80.0, 1.10),
                dr("R-LRC", 85.0, 1.11),
                dr("EC", 90.0, 1.105),
            ],
        )];
        let j = degraded_json("fig9b", &drows);
        assert!(j.contains("\"cost\":1.10"));
        assert!(j.contains("\"p95_ms\":20"));
    }

    #[test]
    #[should_panic]
    fn gain_against_zero_panics() {
        gain_pct(1.0, 0.0);
    }
}

//! Run one experiment cell: a scheme under a workload on the simulated
//! array, summarised the way the paper reports it.

use ecfrm_core::Scheme;
use ecfrm_obs::{DiskBoard, Histogram};
use ecfrm_sim::{mean, ArraySim, DegradedReadWorkload, DiskModel, Jitter, NormalReadWorkload};
use ecfrm_util::Rng;

/// Shared experiment knobs.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Element size in bytes (the paper's discussion assumes ~1 MB).
    pub element_size: usize,
    /// Size of the data address space in elements.
    pub address_space: u64,
    /// Normal-read trials (paper: 2000).
    pub trials_normal: usize,
    /// Degraded-read trials (paper: 5000).
    pub trials_degraded: usize,
    /// Workload + jitter seed.
    pub seed: u64,
    /// Per-access service-time jitter half-width (0.0 = deterministic).
    pub jitter: f64,
    /// Disk model for every spindle.
    pub disk: DiskModel,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            element_size: 1_000_000,
            address_space: 30_000,
            trials_normal: 2000,
            trials_degraded: 5000,
            seed: 20150901, // ICPP'15 conference date
            jitter: 0.10,
            disk: DiskModel::savvio_10k3(),
        }
    }
}

impl ExperimentConfig {
    /// A reduced configuration for fast unit/integration tests.
    pub fn quick() -> Self {
        Self {
            trials_normal: 300,
            trials_degraded: 500,
            address_space: 3_000,
            ..Self::default()
        }
    }

    fn sim(&self, n_disks: usize) -> ArraySim {
        let sim = ArraySim::uniform(n_disks, self.disk, self.element_size);
        if self.jitter > 0.0 {
            sim.with_jitter(Jitter::new(self.jitter))
        } else {
            sim
        }
    }
}

/// Per-trial latency percentiles and cumulative disk-load imbalance,
/// distilled from an [`ecfrm_obs`] histogram + disk board.
#[derive(Debug, Clone, Copy)]
pub struct TailStats {
    /// Median simulated request latency, ms.
    pub p50_ms: f64,
    /// 95th-percentile simulated request latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile simulated request latency, ms.
    pub p99_ms: f64,
    /// Cumulative disk-load imbalance over the whole run: max/mean
    /// elements read per disk (1.0 = perfectly even).
    pub load_imbalance: f64,
}

impl TailStats {
    fn from_obs(hist: &Histogram, board: &DiskBoard) -> Self {
        let h = hist.snapshot();
        Self {
            p50_ms: h.p50() as f64 / 1e3,
            p95_ms: h.p95() as f64 / 1e3,
            p99_ms: h.p99() as f64 / 1e3,
            load_imbalance: board.snapshot().imbalance(),
        }
    }
}

/// Aggregated outcome of a normal-read experiment (one Figure 8 bar).
#[derive(Debug, Clone)]
pub struct NormalResult {
    /// Scheme display name.
    pub scheme: String,
    /// Mean read speed over all trials, MB/s (the figure's y-axis).
    pub speed_mb_s: f64,
    /// Mean bottleneck load (elements on the most-loaded disk).
    pub mean_max_load: f64,
    /// Mean number of disks serving each request.
    pub mean_disks_touched: f64,
    /// Latency tail + cumulative load-imbalance statistics.
    pub tail: TailStats,
}

/// Aggregated outcome of a degraded-read experiment (Figure 9 bars).
#[derive(Debug, Clone)]
pub struct DegradedResult {
    /// Scheme display name.
    pub scheme: String,
    /// Mean degraded read speed, MB/s (Figure 9c/9d).
    pub speed_mb_s: f64,
    /// Mean degraded read cost = fetched/requested (Figure 9a/9b).
    pub cost: f64,
    /// Mean bottleneck load.
    pub mean_max_load: f64,
    /// Latency tail + cumulative load-imbalance statistics.
    pub tail: TailStats,
}

/// Fold one trial into the latency histogram (simulated service time in
/// µs) and the per-disk load board (elements + bytes actually fetched).
fn observe_trial(
    hist: &Histogram,
    board: &DiskBoard,
    requested_elements: usize,
    element_size: usize,
    speed_mb_s: f64,
    per_disk_load: &[usize],
) {
    let bytes = (requested_elements * element_size) as f64;
    if speed_mb_s > 0.0 {
        // time_us = bytes / (speed MB/s): 1 MB = 1e6 B cancels 1e6 µs/s.
        hist.record((bytes / speed_mb_s) as u64);
    }
    for (disk, &n) in per_disk_load.iter().enumerate() {
        if n > 0 {
            board.record(disk, n as u64, (n * element_size) as u64);
        }
    }
}

/// Run the §VI-B normal-read experiment for one scheme.
pub fn run_normal(scheme: &Scheme, cfg: &ExperimentConfig) -> NormalResult {
    let wl = NormalReadWorkload {
        trials: cfg.trials_normal,
        address_space: cfg.address_space,
        min_size: 1,
        max_size: 20,
    };
    let sim = cfg.sim(scheme.n_disks());
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0xA5A5_A5A5);
    let mut speeds = Vec::with_capacity(cfg.trials_normal);
    let mut max_loads = Vec::with_capacity(cfg.trials_normal);
    let mut touched = Vec::with_capacity(cfg.trials_normal);
    let hist = Histogram::new();
    let board = DiskBoard::new(scheme.n_disks());
    for req in wl.generate(cfg.seed) {
        let plan = scheme.normal_read_plan(req.start, req.size);
        let load = plan.per_disk_load();
        let speed = sim.read_speed_mb_s(req.size, &load, &mut rng);
        observe_trial(&hist, &board, req.size, cfg.element_size, speed, &load);
        speeds.push(speed);
        max_loads.push(plan.max_load() as f64);
        touched.push(plan.disks_touched() as f64);
    }
    NormalResult {
        scheme: scheme.name(),
        speed_mb_s: mean(&speeds),
        mean_max_load: mean(&max_loads),
        mean_disks_touched: mean(&touched),
        tail: TailStats::from_obs(&hist, &board),
    }
}

/// Run the §VI-C degraded-read experiment for one scheme.
pub fn run_degraded(scheme: &Scheme, cfg: &ExperimentConfig) -> DegradedResult {
    let wl = DegradedReadWorkload {
        trials: cfg.trials_degraded,
        address_space: cfg.address_space,
        min_size: 1,
        max_size: 20,
        n_disks: scheme.n_disks(),
    };
    let sim = cfg.sim(scheme.n_disks());
    let mut rng = Rng::seed_from_u64(cfg.seed ^ 0x5A5A_5A5A);
    let mut speeds = Vec::with_capacity(cfg.trials_degraded);
    let mut costs = Vec::with_capacity(cfg.trials_degraded);
    let mut max_loads = Vec::with_capacity(cfg.trials_degraded);
    let hist = Histogram::new();
    let board = DiskBoard::new(scheme.n_disks());
    for req in wl.generate(cfg.seed.wrapping_add(1)) {
        let failed = req.failed_disk.expect("degraded workload sets a disk");
        let plan = scheme.degraded_read_plan(req.start, req.size, &[failed]);
        debug_assert!(plan.unreadable.is_empty(), "single failure always readable");
        let load = plan.per_disk_load();
        let speed = sim.read_speed_mb_s(req.size, &load, &mut rng);
        observe_trial(&hist, &board, req.size, cfg.element_size, speed, &load);
        speeds.push(speed);
        costs.push(plan.cost());
        max_loads.push(plan.max_load() as f64);
    }
    DegradedResult {
        scheme: scheme.name(),
        speed_mb_s: mean(&speeds),
        cost: mean(&costs),
        mean_max_load: mean(&max_loads),
        tail: TailStats::from_obs(&hist, &board),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{lrc_schemes, rs_schemes};

    #[test]
    fn normal_experiment_is_deterministic() {
        let cfg = ExperimentConfig::quick();
        let [std, _, _] = rs_schemes(6, 3);
        let a = run_normal(&std, &cfg);
        let b = run_normal(&std, &cfg);
        assert_eq!(a.speed_mb_s, b.speed_mb_s);
    }

    #[test]
    fn ecfrm_rs_beats_standard_on_normal_reads() {
        // Figure 8(a)'s headline: EC-FRM-RS 19-34% faster than RS.
        let cfg = ExperimentConfig::quick();
        for (k, m) in crate::params::rs_params() {
            let [std, rot, ec] = rs_schemes(k, m);
            let s_std = run_normal(&std, &cfg).speed_mb_s;
            let s_rot = run_normal(&rot, &cfg).speed_mb_s;
            let s_ec = run_normal(&ec, &cfg).speed_mb_s;
            assert!(
                s_ec > s_std * 1.05,
                "({k},{m}): EC-FRM {s_ec:.1} should clearly beat standard {s_std:.1}"
            );
            assert!(
                s_ec > s_rot,
                "({k},{m}): EC-FRM {s_ec:.1} should beat rotated {s_rot:.1}"
            );
        }
    }

    #[test]
    fn ecfrm_lrc_beats_standard_on_normal_reads() {
        let cfg = ExperimentConfig::quick();
        for (k, l, m) in crate::params::lrc_params() {
            let [std, _, ec] = lrc_schemes(k, l, m);
            let s_std = run_normal(&std, &cfg).speed_mb_s;
            let s_ec = run_normal(&ec, &cfg).speed_mb_s;
            assert!(
                s_ec > s_std * 1.05,
                "({k},{l},{m}): EC-FRM {s_ec:.1} vs standard {s_std:.1}"
            );
        }
    }

    #[test]
    fn degraded_cost_nearly_identical_across_forms() {
        // Figure 9(a)/9(b): cost differs by < 1% between forms.
        let cfg = ExperimentConfig::quick();
        let [std, rot, ec] = lrc_schemes(6, 2, 2);
        let c_std = run_degraded(&std, &cfg).cost;
        let c_rot = run_degraded(&rot, &cfg).cost;
        let c_ec = run_degraded(&ec, &cfg).cost;
        for (name, c) in [("rotated", c_rot), ("ecfrm", c_ec)] {
            assert!(
                (c - c_std).abs() / c_std < 0.05,
                "{name} cost {c:.4} deviates from standard {c_std:.4}"
            );
        }
    }

    #[test]
    fn tail_stats_are_populated_and_ecfrm_is_tighter() {
        let cfg = ExperimentConfig::quick();
        let [std, _, ec] = rs_schemes(6, 3);
        let r_std = run_normal(&std, &cfg);
        let r_ec = run_normal(&ec, &cfg);
        assert!(r_std.tail.p50_ms > 0.0);
        assert!(r_std.tail.p99_ms >= r_std.tail.p95_ms);
        assert!(r_std.tail.p95_ms >= r_std.tail.p50_ms);
        // The paper's Figure 8 mechanism: EC-FRM spreads sequential
        // reads, so cumulative per-disk load is strictly more even.
        assert!(
            r_ec.tail.load_imbalance < r_std.tail.load_imbalance,
            "EC-FRM imbalance {:.3} should beat standard {:.3}",
            r_ec.tail.load_imbalance,
            r_std.tail.load_imbalance
        );
        assert!(r_ec.tail.load_imbalance >= 1.0);
    }

    #[test]
    fn degraded_speed_ecfrm_beats_standard() {
        let cfg = ExperimentConfig::quick();
        let [std, _, ec] = lrc_schemes(6, 2, 2);
        let s_std = run_degraded(&std, &cfg).speed_mb_s;
        let s_ec = run_degraded(&ec, &cfg).speed_mb_s;
        assert!(s_ec > s_std, "EC-FRM {s_ec:.1} vs standard {s_std:.1}");
    }

    #[test]
    fn lrc_cost_below_rs_cost() {
        let cfg = ExperimentConfig::quick();
        let [rs_std, _, _] = rs_schemes(6, 3);
        let [lrc_std, _, _] = lrc_schemes(6, 2, 2);
        let rs_cost = run_degraded(&rs_std, &cfg).cost;
        let lrc_cost = run_degraded(&lrc_std, &cfg).cost;
        assert!(lrc_cost < rs_cost, "LRC {lrc_cost:.3} vs RS {rs_cost:.3}");
    }
}

//! Front-door acceptance scenarios that need the whole store underneath:
//! cache coherence across corruption, repair rewrites, and disk
//! rebuilds; and QoS isolation — a throttled bulk tenant must not be
//! able to starve a latency tenant.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ecfrm_codes::RsCode;
use ecfrm_core::{LayoutKind, Scheme};
use ecfrm_sim::{DiskBackend, FaultKind, FaultyDisk, MemDisk, ThreadedArray};
use ecfrm_store::{FrontConfig, FrontDoor, ObjectStore, QosClass, StoreError, TenantSpec};

const ELEMENT: usize = 512;

fn payload(len: usize, seed: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + seed) % 256) as u8).collect()
}

fn scheme() -> Scheme {
    Scheme::builder(Arc::new(RsCode::vandermonde(6, 3)))
        .layout(LayoutKind::EcFrm)
        .build()
}

/// A front door over `FaultyDisk`-wrapped shards, so tests can corrupt
/// and kill disks underneath the cache.
fn faulty_front() -> (Arc<FrontDoor>, Vec<Arc<FaultyDisk>>) {
    let sch = scheme();
    let faulty: Vec<Arc<FaultyDisk>> = (0..sch.n_disks())
        .map(|_| FaultyDisk::wrap(Arc::new(MemDisk::new())))
        .collect();
    let backends: Vec<Arc<dyn DiskBackend>> = faulty
        .iter()
        .map(|f| Arc::clone(f) as Arc<dyn DiskBackend>)
        .collect();
    let store = Arc::new(ObjectStore::with_array(
        sch,
        ELEMENT,
        ThreadedArray::from_backends(backends),
    ));
    (FrontDoor::new(store, FrontConfig::default()), faulty)
}

fn counter(front: &FrontDoor, name: &str) -> u64 {
    front
        .store()
        .recorder()
        .snapshot()
        .counters
        .get(name)
        .copied()
        .unwrap_or(0)
}

/// The cache must never serve stale bytes across the two mutation paths
/// a stripe has: a lying disk forcing degraded decode, and a repair /
/// full-rebuild rewriting elements. Every read below is compared
/// byte-for-byte against the reference copy.
#[test]
fn cache_stays_byte_correct_across_corrupt_then_repair() {
    let (front, faulty) = faulty_front();
    let data = payload(60_000, 7);
    front.put("web", "asset", &data).unwrap();

    // Warm the cache: second read must hit.
    assert_eq!(front.read("web", "asset").unwrap(), data);
    let hits_before = counter(&front, "cache.hit");
    assert_eq!(front.read("web", "asset").unwrap(), data);
    assert!(
        counter(&front, "cache.hit") > hits_before,
        "hot reread must be served by the cache"
    );

    // Disk 2 starts lying. Cached elements are decoded *data* elements
    // verified on the way in, so cached answers stay correct; cold
    // elements take the degraded path and must also come back correct.
    faulty[2].arm(FaultKind::FlipCorrupt, 0);
    assert_eq!(front.read("web", "asset").unwrap(), data);
    faulty[2].clear();

    // Repair rewrites disk 2's stripes: every rewrite fires a
    // `StripeEvent::Rewritten` which drops that stripe's cached
    // elements — the conservative coherence fence.
    let inv_before = counter(&front, "cache.invalidate");
    let stripes = front.store().stats().stripes;
    for s in 0..stripes {
        front.store().repair_stripe(2, s).unwrap();
    }
    assert!(
        counter(&front, "cache.invalidate") > inv_before,
        "repair rewrites must invalidate cached elements of the stripe"
    );
    assert_eq!(front.read("web", "asset").unwrap(), data);

    // Full disk rebuild: kill a disk, rebuild it, cache flushes whole.
    front.store().fail_disk(4).unwrap();
    assert_eq!(front.read("web", "asset").unwrap(), data, "degraded read");
    front.store().recover_disk(4).unwrap();
    assert_eq!(front.read("web", "asset").unwrap(), data);
    // And the cache goes hot again afterwards.
    let hits_before = counter(&front, "cache.hit");
    assert_eq!(front.read("web", "asset").unwrap(), data);
    assert!(counter(&front, "cache.hit") > hits_before);
}

/// Growing an object invalidates the stripes its new extents seal, so
/// reads spanning old + new extents are byte-correct with a warm cache.
#[test]
fn growing_object_stays_correct_through_seal_invalidation() {
    let (front, _faulty) = faulty_front();
    let a = payload(20_000, 1);
    let b = payload(30_000, 2);

    front.put("web", "log", &a).unwrap();
    assert_eq!(front.read("web", "log").unwrap(), a); // cache warms on `a`
    front.write("web", "log", &b).unwrap();

    let mut want = a.clone();
    want.extend_from_slice(&b);
    assert_eq!(front.read("web", "log").unwrap(), want);
    // Range crossing the extent seam, served partly from cache.
    assert_eq!(
        front.read_range("web", "log", 19_990, 20).unwrap(),
        &want[19_990..20_010]
    );
    assert_eq!(front.stat("web", "log").unwrap().extents, 2);
}

/// QoS isolation: a bulk tenant hammering reads against a tiny rate
/// budget gets delayed and rejected; the latency tenant sharing the
/// store sees zero queueing, zero rejections, byte-correct answers,
/// and a sane tail while the flood runs.
#[test]
fn bulk_flood_cannot_starve_latency_tenant() {
    let (front, _faulty) = faulty_front();
    front.register_tenant(TenantSpec::new("web", QosClass::Latency));
    // 1 KiB/s: the flood's first 4 KiB read overdraws the bucket by
    // four seconds of rate — far past the 500 ms bulk deadline — so
    // everything after it rejects instantly.
    front.register_tenant(TenantSpec::new("scan", QosClass::Bulk).rate(1024));

    let web_data = payload(4096, 3);
    let scan_data = payload(4096, 4);
    front.put("web", "obj", &web_data).unwrap();
    front.put("scan", "obj", &scan_data).unwrap();

    // Flood from two bulk threads while the latency tenant reads.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flood: Vec<_> = (0..2)
        .map(|_| {
            let front = Arc::clone(&front);
            let stop = Arc::clone(&stop);
            let want = scan_data.clone();
            std::thread::spawn(move || {
                let mut throttled = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    match front.read("scan", "obj") {
                        Ok(bytes) => assert_eq!(bytes, want),
                        Err(StoreError::Throttled(_)) => throttled += 1,
                        Err(e) => panic!("unexpected flood error: {e}"),
                    }
                }
                throttled
            })
        })
        .collect();

    let mut lat = Vec::with_capacity(200);
    for _ in 0..200 {
        let t0 = Instant::now();
        assert_eq!(front.read("web", "obj").unwrap(), web_data);
        lat.push(t0.elapsed());
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let throttled: u64 = flood.into_iter().map(|h| h.join().unwrap()).sum();

    assert!(throttled > 0, "the flood must actually hit the limiter");
    assert_eq!(
        counter(&front, "tenant.web.delayed"),
        0,
        "latency-class requests are never queued"
    );
    assert_eq!(counter(&front, "tenant.web.rejected"), 0);
    assert_eq!(counter(&front, "tenant.web.reads"), 200);

    // A generous tripwire, not a benchmark: in-memory reads are tens of
    // microseconds, so a p99 in the tens of milliseconds means bulk
    // queueing leaked into the latency tenant's path (e.g. an admission
    // sleep under a shared lock).
    lat.sort();
    let p99 = lat[lat.len() * 99 / 100 - 1];
    assert!(
        p99 < Duration::from_millis(50),
        "latency tenant p99 {p99:?} under bulk flood"
    );
}

//! A small thread-local buffer pool for the store's hot loops.
//!
//! The scrub and read paths churn through element-sized `Vec<u8>`
//! scratch buffers: scrub re-derives every group's parities, and a range
//! read receives one owned region per element only to copy a byte range
//! out and drop them. Routing those buffers through a per-thread
//! free list turns the steady state allocation-free — each loop
//! iteration reuses the previous iteration's capacity instead of going
//! back to the allocator.
//!
//! The pool is deliberately modest: a bounded `thread_local!` stack of
//! retired buffers, no cross-thread sharing, no size classes. Buffers
//! handed out are zero-filled to the requested length so callers see
//! exactly what `vec![0u8; len]` would give them. `ecfrm_util::par_map`
//! workers get their own (initially empty) pool and recycle across the
//! items they process within one call; buffers whose ownership leaves
//! the store (e.g. regions moved into a disk write batch) are simply
//! never returned.

use std::cell::RefCell;

/// Retired buffers kept per thread. Beyond this, [`give`] drops the
/// buffer — the pool must never become an unbounded memory hog when a
/// burst retires more buffers than the steady state reuses.
const MAX_POOLED: usize = 64;

/// Buffers above this capacity are dropped rather than pooled, so one
/// giant read doesn't pin its peak footprint forever.
const MAX_POOLED_CAPACITY: usize = 4 << 20;

thread_local! {
    static POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Take a zero-filled buffer of exactly `len` bytes, reusing a retired
/// buffer's capacity when one is available.
pub fn take(len: usize) -> Vec<u8> {
    let reused = POOL.with(|p| p.borrow_mut().pop());
    match reused {
        Some(mut buf) => {
            buf.clear();
            buf.resize(len, 0);
            buf
        }
        None => vec![0u8; len],
    }
}

/// Retire a buffer into the current thread's pool for a later [`take`].
pub fn give(buf: Vec<u8>) {
    if buf.capacity() == 0 || buf.capacity() > MAX_POOLED_CAPACITY {
        return;
    }
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
        }
    });
}

/// Retire a whole batch of buffers.
pub fn give_all<I: IntoIterator<Item = Vec<u8>>>(bufs: I) {
    for b in bufs {
        give(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_of_requested_len() {
        let mut b = take(16);
        b.iter_mut().for_each(|x| *x = 0xAB);
        give(b);
        let b2 = take(8);
        assert_eq!(b2, vec![0u8; 8]);
        let b3 = take(32); // growth past recycled capacity still zeroed
        assert_eq!(b3, vec![0u8; 32]);
    }

    #[test]
    fn pool_reuses_capacity() {
        let b = take(1024);
        let cap = b.capacity();
        let ptr = b.as_ptr() as usize;
        give(b);
        let b2 = take(512);
        // Not guaranteed by the allocator in general, but with a
        // freshly-pooled buffer the same allocation must come back.
        assert_eq!(b2.capacity(), cap);
        assert_eq!(b2.as_ptr() as usize, ptr);
    }

    #[test]
    fn zero_capacity_buffers_not_pooled() {
        give(Vec::new());
        // Must not panic and must still serve fresh allocations.
        assert_eq!(take(4), vec![0u8; 4]);
    }

    #[test]
    fn pool_is_bounded() {
        for _ in 0..(MAX_POOLED + 20) {
            give(vec![0u8; 8]);
        }
        POOL.with(|p| assert!(p.borrow().len() <= MAX_POOLED));
    }
}

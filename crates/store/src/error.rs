//! Store error type.

use ecfrm_codes::CodeError;

/// Errors surfaced by the object store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// No object with that name.
    NotFound(String),
    /// An object with that name already exists (append-only store:
    /// objects are immutable).
    AlreadyExists(String),
    /// Requested byte range exceeds the object.
    RangeOutOfBounds {
        /// Object name.
        name: String,
        /// Object length in bytes.
        len: u64,
    },
    /// Too many disks are down: some requested data is unrecoverable.
    DataLoss(String),
    /// A disk index was out of range.
    NoSuchDisk(usize),
    /// A stripe index beyond what has been sealed (repair of unsealed
    /// data is meaningless — it has no parities yet).
    NoSuchStripe(u64),
    /// Decoding failed.
    Code(CodeError),
    /// A network-layer failure reached the store (remote shards only).
    ///
    /// Carries the transport error's message; `ecfrm-net` provides
    /// `From<NetError> for StoreError` so callers can `?` across the
    /// store/network boundary without stringifying.
    Net(String),
    /// Admission control rejected the request: the tenant's token
    /// bucket could not cover it within the configured maximum queueing
    /// delay. The request was not executed; retry after backing off.
    Throttled(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound(n) => write!(f, "object not found: {n}"),
            StoreError::AlreadyExists(n) => write!(f, "object already exists: {n}"),
            StoreError::RangeOutOfBounds { name, len } => {
                write!(f, "range out of bounds for {name} (len {len})")
            }
            StoreError::DataLoss(msg) => write!(f, "data loss: {msg}"),
            StoreError::NoSuchDisk(d) => write!(f, "no such disk: {d}"),
            StoreError::NoSuchStripe(s) => write!(f, "no such sealed stripe: {s}"),
            StoreError::Code(e) => write!(f, "decode error: {e}"),
            StoreError::Net(msg) => write!(f, "network error: {msg}"),
            StoreError::Throttled(msg) => write!(f, "throttled: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CodeError> for StoreError {
    fn from(e: CodeError) -> Self {
        StoreError::Code(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StoreError::NotFound("a".into()).to_string().contains("a"));
        assert!(StoreError::NoSuchDisk(7).to_string().contains('7'));
        let c: StoreError = CodeError::Shape("x".into()).into();
        assert!(matches!(c, StoreError::Code(_)));
    }
}

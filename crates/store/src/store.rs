//! The [`ObjectStore`]: append-only, full-stripe-write, read-optimised.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use ecfrm_util::{par_map, Mutex};

use ecfrm_core::recover::RepairTask;
use ecfrm_core::{DiskRecovery, ReadCtx, Scheme};
use ecfrm_integrity::{append_footer, leaf_hash, verify_footer, HashKey, MerkleTree, FOOTER_LEN};
use ecfrm_layout::Loc;
use ecfrm_obs::{Counter, DiskBoard, Histogram, Recorder};
use ecfrm_sim::{
    combine_status, CombineOutcome, CombinePeerSpec, CombineSpec, NetStats, ThreadedArray,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::error::StoreError;
use crate::meta::{ObjectMeta, ReadStats, ScrubReport, StoreStats, StripeManifest, StripeRepair};
use crate::repair::RepairQueue;

/// Pre-resolved instrument handles for the read hot path: one registry
/// lookup each at construction, then pure atomics per read.
struct StoreMetrics {
    reads: Counter,
    degraded_reads: Counter,
    replans: Counter,
    fetched_elements: Counter,
    repair_elements: Counter,
    /// Per-disk vectored requests issued by the batched read path (one
    /// per touched disk per fetch round; for remote backends this is
    /// the logical RPC count).
    rpcs: Counter,
    /// Elements carried by those vectored requests.
    batch_elems: Counter,
    /// Per-disk batches whose offsets formed one contiguous ascending
    /// run of ≥ 2 elements — the batches a remote backend ships as a
    /// single coalesced `GetRange`.
    coalesced_runs: Counter,
    /// Elements whose checksum footer (or merkle path, during scrub)
    /// failed verification — each is treated as an erasure.
    verify_fail: Counter,
    /// Elements a scrub pass checked against their stripe manifest.
    elements_verified: Counter,
    /// Bytes the rebuilding client ingested during stripe repair — the
    /// repair traffic the paper's recovery argument prices. Combined
    /// repair ships `rows` pre-summed regions instead of `k·rows`
    /// elements, so this is the counter the bench compares.
    repair_wire_bytes: Counter,
    /// Repair source elements read from a disk outside the failed
    /// disk's failure domain (rack). Zero whenever an intra-domain plan
    /// exists.
    cross_domain_reads: Counter,
    /// Stripes repaired via server-side `CombineRange` partial sums.
    combined_stripes: Counter,
    /// Reads planned degraded around a live-but-hot disk at a caller's
    /// request ([`ReadOpts::avoid`]) — the front-door cache's
    /// load-aware miss path.
    avoided_reads: Counter,
    /// Avoid requests abandoned because the avoiding plan was
    /// unreadable or cost more than [`ReadOpts::max_avoid_cost`].
    avoid_fallbacks: Counter,
    plan_us: Histogram,
    read_us: Histogram,
    /// Time spent verifying checksum footers (per read / per scrubbed
    /// stripe).
    verify_us: Histogram,
    disk_load: DiskBoard,
}

impl StoreMetrics {
    fn new(recorder: &Recorder, n_disks: usize) -> Self {
        Self {
            reads: recorder.counter("reads"),
            degraded_reads: recorder.counter("degraded_reads"),
            replans: recorder.counter("replans"),
            fetched_elements: recorder.counter("fetched_elements"),
            repair_elements: recorder.counter("repair_elements"),
            rpcs: recorder.counter("read.rpcs"),
            batch_elems: recorder.counter("read.batch_elems"),
            coalesced_runs: recorder.counter("read.coalesced_runs"),
            verify_fail: recorder.counter("integrity.verify_fail"),
            elements_verified: recorder.counter("scrub.elements_verified"),
            repair_wire_bytes: recorder.counter("repair.wire_bytes"),
            cross_domain_reads: recorder.counter("repair.cross_domain_reads"),
            combined_stripes: recorder.counter("repair.combined_stripes"),
            avoided_reads: recorder.counter("read.avoided"),
            avoid_fallbacks: recorder.counter("read.avoid_fallback"),
            plan_us: recorder.histogram("plan_us"),
            read_us: recorder.histogram("read_us"),
            verify_us: recorder.histogram("verify_us"),
            disk_load: recorder.disk_board("disk_load", n_disks),
        }
    }

    /// Tally one dispatched fetch round: `jobs` per-disk requests
    /// covering `addrs`.
    fn note_batch(&self, jobs: usize, addrs: &[(usize, u64)]) {
        self.rpcs.add(jobs as u64);
        self.batch_elems.add(addrs.len() as u64);
        self.coalesced_runs.add(count_coalesced_runs(addrs) as u64);
    }
}

/// How many per-disk groups of `addrs` (grouped in submission order, the
/// way `ThreadedArray` dispatches them) form one contiguous ascending
/// offset run of ≥ 2 elements — exactly the batches `RemoteDisk` ships
/// as a coalesced `GetRange`.
fn count_coalesced_runs(addrs: &[(usize, u64)]) -> usize {
    let mut per_disk: HashMap<usize, Vec<u64>> = HashMap::new();
    for &(d, o) in addrs {
        per_disk.entry(d).or_default().push(o);
    }
    per_disk
        .values()
        .filter(|offs| offs.len() >= 2 && offs.windows(2).all(|w| w[1] == w[0].wrapping_add(1)))
        .count()
}

/// Outcome of one combined-repair attempt on a stripe.
enum CombinedRepair {
    /// Rebuilt and written back.
    Done(StripeRepair),
    /// These helpers failed checksum verification — exclude them and
    /// replan the stripe.
    Corrupt(Vec<usize>),
    /// A helper's combine latch just flipped off (old server) — replan;
    /// the next attempt serves it with raw fetches instead.
    Retry,
    /// Combining was not possible (no capable helper, latch flipped,
    /// helper vanished); use the batched path for this stripe.
    Fallback,
}

/// A [`StripeEvent`] subscriber registered with
/// [`ObjectStore::subscribe_stripes`]. Called synchronously after the
/// store's internal lock is released, so it may call back into the
/// store.
pub type StripeListener = Arc<dyn Fn(StripeEvent) + Send + Sync>;

/// A change to sealed-stripe state, delivered to subscribers registered
/// via [`ObjectStore::subscribe_stripes`].
///
/// The front door's decoded-element cache uses these to invalidate:
/// repair rewrites identical payloads and sealed elements are
/// immutable, so invalidation is a conservative coherence fence rather
/// than a correctness requirement today — but it keeps the cache honest
/// against any future path that rewrites cells with different bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StripeEvent {
    /// Stripes `first .. first + count` were sealed and written out.
    Sealed {
        /// First newly sealed stripe index.
        first: u64,
        /// Number of stripes sealed in this batch.
        count: u64,
    },
    /// One stripe's lost cells were rewritten by
    /// [`ObjectStore::repair_stripe`].
    Rewritten {
        /// The repaired stripe.
        stripe: u64,
    },
    /// Every cell of a disk was rebuilt in place by
    /// [`ObjectStore::recover_disk`].
    DiskRebuilt {
        /// The rebuilt disk.
        disk: usize,
    },
}

/// Per-read options for [`ObjectStore::get_range_with_opts`] and
/// [`ObjectStore::read_extent`].
#[derive(Debug, Clone)]
pub struct ReadOpts {
    /// Live disks the planner should treat as down, so the read decodes
    /// around them instead of touching them — the front-door cache
    /// passes the currently hottest disk here on a miss. Avoided disks
    /// are never marked suspect and never generate repair hints; if the
    /// avoiding plan is unreadable or costs more than
    /// [`ReadOpts::max_avoid_cost`], avoidance is dropped and the read
    /// proceeds normally.
    pub avoid: Vec<usize>,
    /// Cost ceiling (fetched/requested elements, [`ReadStats::cost`])
    /// above which avoidance is abandoned. EC-FRM's rotated layout
    /// usually substitutes a same-group parity at equal cost, so the
    /// default `1.3` only forgives small remainder-group overheads.
    pub max_avoid_cost: f64,
}

impl Default for ReadOpts {
    fn default() -> Self {
        Self {
            avoid: Vec::new(),
            max_avoid_cost: 1.3,
        }
    }
}

struct Inner {
    catalog: HashMap<String, ObjectMeta>,
    /// Unsealed logical bytes (tail of the append stream).
    pending: Vec<u8>,
    /// Total logical bytes appended, including alignment padding.
    logical_len: u64,
    /// Data elements sealed into full stripes.
    sealed_elements: u64,
    /// Full stripes written.
    stripes: u64,
    /// Per-stripe integrity manifests, indexed by stripe number. Built
    /// at seal time; repair rewrites identical payloads, so manifests
    /// stay valid for the stripe's lifetime.
    manifests: Vec<StripeManifest>,
    failed: BTreeSet<usize>,
}

/// An erasure-coded object store over a threaded disk array.
///
/// Objects are immutable byte blobs appended to a logical stream. The
/// stream is chunked into fixed-size elements; once a full stripe of data
/// elements accumulates it is encoded (all stripes in parallel) and
/// written out. Reads plan through the scheme — normal or degraded —
/// and execute on the array's worker threads. When a disk stops
/// answering mid-read (a remote shard timing out or dying), the read
/// falls back to a degraded plan around the suspect disk instead of
/// failing.
pub struct ObjectStore {
    scheme: Scheme,
    element_size: usize,
    array: ThreadedArray,
    inner: Mutex<Inner>,
    /// Solved repair-coefficient vectors, reused across degraded reads
    /// with the same erasure geometry.
    decoder_cache: ecfrm_codes::DecoderCache,
    /// Observability registry: read/plan/decode latency histograms,
    /// per-disk load board, read counters. Snapshot via
    /// [`ObjectStore::recorder`].
    recorder: Recorder,
    metrics: StoreMetrics,
    /// Stripe repair queue. Degraded reads drop priority hints into it
    /// (no-ops until a [`RepairManager`](crate::RepairManager) attaches)
    /// so hot stripes regain redundancy first.
    repair_queue: Arc<RepairQueue>,
    /// The keyed-hash key every element footer and merkle manifest is
    /// computed under.
    key: HashKey,
    /// When set (the default), the batched read path verifies each
    /// element's checksum footer as its disk answers and treats a
    /// mismatch exactly like an erasure. Clearing it skips the check
    /// (footers are still stripped) — the bench uses this to price
    /// verify-on-read.
    verify_reads: AtomicBool,
    /// When set (the default), [`ObjectStore::repair_stripe`] tries the
    /// repair-traffic-optimal path first: helpers multiply their own
    /// elements by the decode coefficients server-side (`CombineRange`)
    /// and one root helper merges the partial sums, so the rebuilder
    /// ingests `rows` regions instead of `k·rows` elements. Clearing it
    /// forces the naive fetch-everything path — the bench prices the
    /// difference.
    combined_repair: AtomicBool,
    /// Stripe-event subscribers (the front door's cache invalidation).
    listeners: Mutex<Vec<StripeListener>>,
    /// Events recorded while `inner` was held, delivered by
    /// [`Self::notify`] once the lock is released so subscribers may
    /// freely call back into the store.
    pending_events: Mutex<Vec<StripeEvent>>,
}

impl std::fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ObjectStore({}, {}B elements)",
            self.scheme.name(),
            self.element_size
        )
    }
}

impl ObjectStore {
    /// Create a store using `scheme` with `element_size`-byte elements
    /// (the paper's testbed uses ~1 MB elements; tests use small ones).
    ///
    /// # Panics
    /// Panics if `element_size == 0`.
    pub fn new(scheme: Scheme, element_size: usize) -> Self {
        let array = ThreadedArray::new(scheme.n_disks());
        Self::with_array(scheme, element_size, array)
    }

    /// Create a store over a caller-built array — e.g. file-backed disks
    /// ([`ecfrm_sim::FileDisk`]) or latency-injected ones.
    ///
    /// # Panics
    /// Panics if `element_size == 0` or the array's disk count differs
    /// from the scheme's.
    pub fn with_array(scheme: Scheme, element_size: usize, array: ThreadedArray) -> Self {
        assert!(element_size > 0, "element size must be positive");
        assert_eq!(
            array.n_disks(),
            scheme.n_disks(),
            "array size must match the scheme"
        );
        let decoder_cache = ecfrm_codes::DecoderCache::new(scheme.code().generator().clone());
        let recorder = Recorder::new();
        let metrics = StoreMetrics::new(&recorder, scheme.n_disks());
        // Record which GF region-kernel backend this process dispatched
        // to (avx2/ssse3/neon/portable/scalar), so stats snapshots show
        // what the encode/decode numbers were produced with.
        recorder
            .counter(&format!(
                "kernel_backend.{}",
                ecfrm_gf::kernel::active().name
            ))
            .inc();
        Self {
            decoder_cache,
            recorder,
            metrics,
            repair_queue: RepairQueue::new(),
            scheme,
            element_size,
            array,
            inner: Mutex::new(Inner {
                catalog: HashMap::new(),
                pending: Vec::new(),
                logical_len: 0,
                sealed_elements: 0,
                stripes: 0,
                manifests: Vec::new(),
                failed: BTreeSet::new(),
            }),
            key: HashKey::DEFAULT,
            verify_reads: AtomicBool::new(true),
            combined_repair: AtomicBool::new(true),
            listeners: Mutex::new(Vec::new()),
            pending_events: Mutex::new(Vec::new()),
        }
    }

    /// Subscribe to [`StripeEvent`]s: seals, repair rewrites, and
    /// whole-disk rebuilds. Events are delivered synchronously from the
    /// store call that completed the change, after the store's internal
    /// lock is released (so subscribers may call back into the store).
    pub fn subscribe_stripes(&self, listener: StripeListener) {
        self.listeners.lock().push(listener);
    }

    /// Record an event for delivery at the next [`Self::notify`]. Safe
    /// to call with `inner` held.
    fn push_event(&self, ev: StripeEvent) {
        if !self.listeners.lock().is_empty() {
            self.pending_events.lock().push(ev);
        }
    }

    /// Deliver pending stripe events. Must be called WITHOUT `inner`
    /// held. Listeners run outside every store lock, so they may call
    /// back into the store; events raised by those calls are drained by
    /// the same loop.
    fn notify(&self) {
        loop {
            let batch: Vec<StripeEvent> = std::mem::take(&mut *self.pending_events.lock());
            if batch.is_empty() {
                return;
            }
            let listeners: Vec<_> = self.listeners.lock().clone();
            for ev in batch {
                for l in &listeners {
                    l(ev);
                }
            }
        }
    }

    /// The bound scheme.
    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// The store's metrics registry. Counters: `reads`,
    /// `degraded_reads`, `replans`, `fetched_elements`,
    /// `repair_elements`, `decoded_elements`, `read.rpcs` (per-disk
    /// vectored requests issued), `read.batch_elems` (elements those
    /// requests carried), `read.coalesced_runs` (per-disk batches that
    /// formed one contiguous run — shipped as a single `GetRange` on
    /// remote backends), `integrity.verify_fail` (elements whose
    /// checksum or merkle path failed), `scrub.elements_verified`,
    /// `repair.wire_bytes` (bytes the rebuilding client ingested during
    /// stripe repair), `repair.cross_domain_reads` (repair sources read
    /// across failure domains), `repair.combined_stripes` (stripes
    /// repaired via server-side `CombineRange`),
    /// `net.*` (transport deltas). Histograms (µs): `plan_us`,
    /// `read_us`, `decode_us`, `verify_us` (checksum verification
    /// time per read / per scrubbed stripe). Disk board: `disk_load`
    /// (planned fetches per disk).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Element size in bytes.
    pub fn element_size(&self) -> usize {
        self.element_size
    }

    /// A live snapshot of the `disk_load` board: cumulative planned
    /// fetches per disk since startup. The front door's cache miss path
    /// diffs successive snapshots to find the currently hottest disk
    /// and asks the planner to decode around it ([`ReadOpts::avoid`]).
    pub fn disk_loads(&self) -> ecfrm_obs::DiskBoardSnapshot {
        self.metrics.disk_load.snapshot()
    }

    /// The store's stripe repair queue (drained by a
    /// [`RepairManager`](crate::RepairManager); degraded reads feed it
    /// priority hints).
    pub fn repair_queue(&self) -> &Arc<RepairQueue> {
        &self.repair_queue
    }

    /// The keyed-hash key element footers and merkle manifests are
    /// computed under (remote shard clients pass it on the wire so
    /// servers can pre-verify coalesced runs).
    pub fn integrity_key(&self) -> HashKey {
        self.key
    }

    /// Whether the read path verifies checksum footers (on by default).
    pub fn verify_reads(&self) -> bool {
        self.verify_reads.load(Ordering::Relaxed)
    }

    /// Enable/disable verify-on-read. With verification off, footers
    /// are still stripped but mismatches go undetected — only the
    /// overhead bench should turn this off.
    pub fn set_verify_reads(&self, on: bool) {
        self.verify_reads.store(on, Ordering::Relaxed);
    }

    /// Whether stripe repair may use server-side `CombineRange` partial
    /// sums (on by default; falls back to raw fetches per helper when a
    /// shard predates the opcode).
    pub fn combined_repair(&self) -> bool {
        self.combined_repair.load(Ordering::Relaxed)
    }

    /// Enable/disable the combined repair path. The repair bench turns
    /// it off to price naive recovery against combined recovery.
    pub fn set_combined_repair(&self, on: bool) {
        self.combined_repair.store(on, Ordering::Relaxed);
    }

    /// The integrity manifest of `stripe`, if sealed.
    pub fn manifest(&self, stripe: u64) -> Option<StripeManifest> {
        self.inner.lock().manifests.get(stripe as usize).cloned()
    }

    /// Append an object. Full stripes are sealed and encoded eagerly;
    /// the tail stays buffered until [`Self::flush`] or a read needs it.
    ///
    /// # Errors
    /// [`StoreError::AlreadyExists`] if the name is taken.
    pub fn put(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        if inner.catalog.contains_key(name) {
            return Err(StoreError::AlreadyExists(name.to_string()));
        }
        let meta = ObjectMeta {
            offset: inner.logical_len,
            len: bytes.len() as u64,
        };
        inner.catalog.insert(name.to_string(), meta);
        inner.pending.extend_from_slice(bytes);
        inner.logical_len += bytes.len() as u64;
        self.seal_full_stripes(&mut inner);
        drop(inner);
        self.notify();
        Ok(())
    }

    /// Append anonymous bytes to the logical stream, returning the
    /// extent they occupy — the front door's write primitive: extent
    /// records ([`crate::ExtentRecord`]) reference these locations
    /// without entering the store's name catalog.
    ///
    /// Like [`Self::put`], full stripes seal eagerly and the tail stays
    /// buffered until a flush or a read needs it. Read the bytes back
    /// with [`Self::read_extent`].
    pub fn append(&self, bytes: &[u8]) -> ObjectMeta {
        let meta = {
            let mut inner = self.inner.lock();
            let meta = ObjectMeta {
                offset: inner.logical_len,
                len: bytes.len() as u64,
            };
            inner.pending.extend_from_slice(bytes);
            inner.logical_len += bytes.len() as u64;
            self.seal_full_stripes(&mut inner);
            meta
        };
        self.notify();
        meta
    }

    /// Seal the pending tail by zero-padding to a stripe boundary, so
    /// everything written so far becomes readable. Later appends start
    /// after the padding (alignment loss, as in real append-only stores).
    pub fn flush(&self) {
        {
            let mut inner = self.inner.lock();
            self.flush_locked(&mut inner);
        }
        self.notify();
    }

    fn flush_locked(&self, inner: &mut Inner) {
        if inner.pending.is_empty() {
            return;
        }
        let stripe_bytes = self.stripe_bytes();
        let pad = (stripe_bytes - inner.pending.len() % stripe_bytes) % stripe_bytes;
        inner.pending.resize(inner.pending.len() + pad, 0);
        inner.logical_len += pad as u64;
        self.seal_full_stripes(inner);
        debug_assert!(inner.pending.is_empty());
    }

    fn stripe_bytes(&self) -> usize {
        self.scheme.data_per_stripe() * self.element_size
    }

    /// Encode and write out every complete stripe in the pending buffer.
    ///
    /// Zero-copy pipeline: stripe blocks are slices straight over
    /// `pending` (no per-stripe block copy), parities land in the write
    /// batch by move, and data bytes are copied exactly once — into the
    /// buffers the disks take ownership of.
    fn seal_full_stripes(&self, inner: &mut Inner) {
        let stripe_bytes = self.stripe_bytes();
        let full = inner.pending.len() / stripe_bytes;
        if full == 0 {
            return;
        }
        let dps = self.scheme.data_per_stripe();
        let first_stripe = inner.stripes;
        let layout = self.scheme.layout();
        let per_stripe = layout.total_per_stripe();
        let blocks: Vec<&[u8]> = inner.pending[..full * stripe_bytes]
            .chunks_exact(stripe_bytes)
            .collect();

        // Encode stripes in parallel: each is an independent set of
        // group-by-group parity computations. Each cell leaves here as
        // `payload || checksum footer`, and each stripe additionally
        // yields its merkle manifest (leaves in layout order).
        type StripeCells = Vec<((usize, u64), Vec<u8>)>;
        let rows = layout.rows_per_stripe();
        let stripes: Vec<(StripeCells, StripeManifest)> = par_map(&blocks, |i, block| {
            let stripe = first_stripe + i as u64;
            let refs: Vec<&[u8]> = block.chunks_exact(self.element_size).collect();
            debug_assert_eq!(refs.len(), dps);
            let mut cells: StripeCells = Vec::with_capacity(per_stripe);
            let base = stripe * dps as u64;
            for (t, d) in refs.iter().enumerate() {
                let loc = layout.data_location(base + t as u64);
                let mut cell = Vec::with_capacity(self.element_size + FOOTER_LEN);
                cell.extend_from_slice(d);
                append_footer(&self.key, loc.offset, &mut cell);
                cells.push(((loc.disk, loc.offset), cell));
            }
            for (loc, mut bytes) in self.scheme.encode_stripe_parities(stripe, &refs) {
                append_footer(&self.key, loc.offset, &mut bytes);
                cells.push(((loc.disk, loc.offset), bytes));
            }
            // Manifest leaves in layout order: row by row, data then
            // parity within each row (the order scrub reads them back).
            let by_addr: HashMap<(usize, u64), &[u8]> = cells
                .iter()
                .map(|((d, o), cell)| ((*d, *o), &cell[..self.element_size]))
                .collect();
            let mut leaves = Vec::with_capacity(per_stripe);
            for row in 0..rows {
                for loc in layout.row_locations(stripe, row) {
                    let payload = by_addr[&(loc.disk, loc.offset)];
                    leaves.push(leaf_hash(&self.key, leaves.len() as u64, payload));
                }
            }
            let manifest = StripeManifest::new(MerkleTree::from_leaves(&self.key, leaves));
            (cells, manifest)
        });
        inner.pending.drain(..full * stripe_bytes);

        let mut batch = Vec::with_capacity(full * per_stripe);
        for (cells, manifest) in stripes {
            batch.extend(cells);
            inner.manifests.push(manifest);
        }
        self.array.write_batch(batch);
        inner.stripes += full as u64;
        inner.sealed_elements += (full * dps) as u64;
        self.push_event(StripeEvent::Sealed {
            first: first_stripe,
            count: full as u64,
        });
    }

    /// Read a whole object.
    pub fn get(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        let len = self.object_len(name)?;
        self.get_range(name, 0, len)
    }

    /// Read a whole object and report how the read went (plan metrics +
    /// wall-clock time) — the instrumentation behind the examples'
    /// speed reports.
    pub fn get_with_stats(&self, name: &str) -> Result<(Vec<u8>, ReadStats), StoreError> {
        let len = self.object_len(name)?;
        self.get_range_with_stats(name, 0, len)
    }

    fn object_len(&self, name: &str) -> Result<u64, StoreError> {
        self.inner
            .lock()
            .catalog
            .get(name)
            .map(|m| m.len)
            .ok_or_else(|| StoreError::NotFound(name.to_string()))
    }

    /// Read `len` bytes of an object starting at byte `start` within it.
    ///
    /// If any referenced element is still unsealed the store flushes
    /// first. Under failed disks the read is planned as a degraded read
    /// and lost elements are reconstructed inline. A disk that stops
    /// answering *during* the read (e.g. a remote shard timing out) is
    /// marked suspect for this read and the plan falls back to degraded
    /// around it.
    pub fn get_range(&self, name: &str, start: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        Ok(self.get_range_with_stats(name, start, len)?.0)
    }

    /// Sum of network transport counters across every backend that
    /// exposes them (remote disks); all-zero for local arrays.
    fn net_snapshot(&self) -> NetStats {
        (0..self.array.n_disks())
            .filter_map(|d| self.array.disk(d).net_stats())
            .fold(NetStats::default(), |acc, s| acc.merge(&s))
    }

    /// [`Self::get_range`] plus per-read statistics.
    pub fn get_range_with_stats(
        &self,
        name: &str,
        start: u64,
        len: u64,
    ) -> Result<(Vec<u8>, ReadStats), StoreError> {
        self.get_range_with_opts(name, start, len, &ReadOpts::default())
    }

    /// [`Self::get_range_with_stats`] with per-read [`ReadOpts`] — the
    /// front door's miss path uses `opts.avoid` to decode around the
    /// currently hottest disk.
    pub fn get_range_with_opts(
        &self,
        name: &str,
        start: u64,
        len: u64,
        opts: &ReadOpts,
    ) -> Result<(Vec<u8>, ReadStats), StoreError> {
        let meta = {
            let inner = self.inner.lock();
            *inner
                .catalog
                .get(name)
                .ok_or_else(|| StoreError::NotFound(name.to_string()))?
        };
        if start + len > meta.len {
            return Err(StoreError::RangeOutOfBounds {
                name: name.to_string(),
                len: meta.len,
            });
        }
        self.read_absolute(
            ObjectMeta {
                offset: meta.offset + start,
                len,
            },
            opts,
        )
    }

    /// Read `len` bytes starting `start` bytes into `extent` — an
    /// anonymous stream location previously returned by
    /// [`Self::append`]. This is the front door's read primitive: its
    /// extent records carry [`ObjectMeta`] locations instead of store
    /// catalog names.
    ///
    /// # Errors
    /// [`StoreError::RangeOutOfBounds`] if `start + len` overruns the
    /// extent (or the logical stream, for a forged extent); otherwise
    /// exactly like [`Self::get_range`].
    pub fn read_extent(
        &self,
        extent: ObjectMeta,
        start: u64,
        len: u64,
        opts: &ReadOpts,
    ) -> Result<(Vec<u8>, ReadStats), StoreError> {
        if start.checked_add(len).is_none_or(|end| end > extent.len) {
            return Err(StoreError::RangeOutOfBounds {
                name: format!("<extent @{}>", extent.offset),
                len: extent.len,
            });
        }
        self.read_absolute(
            ObjectMeta {
                offset: extent.offset + start,
                len,
            },
            opts,
        )
    }

    /// The shared read core: `meta.offset` is an *absolute* logical
    /// stream offset (catalog lookups already applied).
    fn read_absolute(
        &self,
        meta: ObjectMeta,
        opts: &ReadOpts,
    ) -> Result<(Vec<u8>, ReadStats), StoreError> {
        let len = meta.len;
        let failed = {
            let mut inner = self.inner.lock();
            let (_, last) = meta.element_range(self.element_size);
            if last > inner.sealed_elements {
                self.flush_locked(&mut inner);
            }
            if len > 0 && last > inner.sealed_elements {
                return Err(StoreError::RangeOutOfBounds {
                    name: format!("<extent @{}>", meta.offset),
                    len: inner.sealed_elements * self.element_size as u64,
                });
            }
            inner.failed.iter().copied().collect::<Vec<usize>>()
        };
        self.notify();
        if len == 0 {
            return Ok((
                Vec::new(),
                ReadStats {
                    requested_elements: 0,
                    fetched_elements: 0,
                    repair_elements: 0,
                    max_disk_load: 0,
                    cost: 0.0,
                    degraded: !failed.is_empty(),
                    replans: 0,
                    net: NetStats::default(),
                    elapsed: std::time::Duration::ZERO,
                },
            ));
        }

        let t0 = std::time::Instant::now();
        let net_before = self.net_snapshot();
        let (first, last) = meta.element_range(self.element_size);
        let count = (last - first) as usize;

        // The requested byte range, relative to the first fetched
        // element. Elements are copied straight into `out` (no
        // intermediate flattened buffer) and their scratch buffers
        // retired to the thread-local pool.
        let begin = (meta.offset - first * self.element_size as u64) as usize;
        let end = begin + len as usize;
        let mut out = vec![0u8; len as usize];
        let copy_element = |out: &mut [u8], idx: usize, e: &[u8]| {
            let estart = idx * self.element_size;
            let s = begin.max(estart);
            let t = end.min(estart + e.len());
            if s < t {
                out[s - begin..t - begin].copy_from_slice(&e[s - estart..t - estart]);
            }
        };

        // Plan, fetch, and — when a disk stops answering mid-read —
        // mark it suspect and replan degraded around it. Each iteration
        // strictly grows the suspect set, so the loop terminates.
        //
        // Fetches go out as one vectored request per touched disk
        // (`read_batch_streaming`), and per-disk replies are consumed
        // as they arrive: on the normal path each answering disk's
        // elements are copied into `out` while slower disks are still
        // reading; on the degraded path arriving elements accumulate
        // into the assemble map the same way.
        let verify = self.verify_reads.load(Ordering::Relaxed);
        let mut verify_spent = std::time::Duration::ZERO;
        let mut suspects: BTreeSet<usize> = failed.iter().copied().collect();
        // Live disks the caller asked us to plan around (load shedding,
        // not failure): planned as down, but never marked suspect and
        // never hinted for repair. Dropped wholesale if avoiding them
        // would cost more than `opts.max_avoid_cost` or make the range
        // unreadable.
        let mut avoid: BTreeSet<usize> = opts
            .avoid
            .iter()
            .copied()
            .filter(|&d| d < self.scheme.n_disks() && !suspects.contains(&d))
            .collect();
        let mut replans = 0usize;
        let plan = loop {
            let down: Vec<usize> = suspects.union(&avoid).copied().collect();
            let t_plan = std::time::Instant::now();
            let plan = if down.is_empty() {
                self.scheme.normal_read_plan(first, count)
            } else {
                self.scheme.degraded_read_plan(first, count, &down)
            };
            self.metrics.plan_us.record_duration(t_plan.elapsed());
            if !avoid.is_empty()
                && (!plan.unreadable.is_empty() || plan.cost() > opts.max_avoid_cost)
            {
                avoid.clear();
                self.metrics.avoid_fallbacks.inc();
                continue;
            }
            if !plan.unreadable.is_empty() {
                return Err(StoreError::DataLoss(format!(
                    "{} elements unrecoverable under failed disks {down:?}",
                    plan.unreadable.len()
                )));
            }

            // Execute the plan: one vectored request per touched disk.
            let addrs: Vec<(usize, u64)> = plan
                .fetches
                .iter()
                .map(|f| (f.loc.disk, f.loc.offset))
                .collect();
            let mut batch = self.array.read_batch_streaming(&addrs);
            self.metrics.note_batch(batch.jobs(), &addrs);
            let touched: BTreeSet<usize> = addrs.iter().map(|&(d, _)| d).collect();
            let mut answered: BTreeSet<usize> = BTreeSet::new();
            let mut newly_suspect: BTreeSet<usize> = BTreeSet::new();
            let normal = down.is_empty();
            // Degraded reads collect into a map for group decode; the
            // map stays empty on the normal path (fetch i IS demand
            // element i, copied out directly as its disk answers).
            let mut fetched: HashMap<Loc, Vec<u8>> = if normal {
                HashMap::new()
            } else {
                HashMap::with_capacity(addrs.len())
            };
            while let Some(reply) = batch.next_reply() {
                answered.insert(reply.disk);
                for (tag, bytes) in reply.items {
                    match bytes {
                        Some(mut b) => {
                            // Verify-on-read: a cell whose checksum
                            // footer disagrees is *exactly* an erasure —
                            // the disk goes suspect and the read replans
                            // degraded around it. With verification off
                            // the footer is only stripped.
                            let ok = if verify {
                                let t_v = std::time::Instant::now();
                                let ok = verify_footer(&self.key, addrs[tag].1, &b).is_some();
                                verify_spent += t_v.elapsed();
                                ok
                            } else {
                                b.len() >= self.element_size
                            };
                            if !ok {
                                self.metrics.verify_fail.inc();
                                newly_suspect.insert(addrs[tag].0);
                                crate::bufpool::give(b);
                                continue;
                            }
                            b.truncate(self.element_size);
                            if normal {
                                copy_element(&mut out, tag, &b);
                                crate::bufpool::give(b);
                            } else {
                                fetched.insert(plan.fetches[tag].loc, b);
                            }
                        }
                        None => {
                            newly_suspect.insert(addrs[tag].0);
                        }
                    }
                }
            }
            // A worker that died mid-batch ends the reply stream early;
            // its disk never answered and is suspect like any other.
            newly_suspect.extend(touched.difference(&answered));
            // Feed the failure detector: a disk that served every
            // requested element is vouched for again; one that stopped
            // answering goes on the array's suspect list for the
            // background repair pipeline to probe.
            for &d in answered.difference(&newly_suspect) {
                self.array.clear_suspect(d);
            }
            for &d in &newly_suspect {
                self.array.mark_suspect(d);
            }
            if newly_suspect.is_empty() {
                if !normal {
                    let elements = self.scheme.assemble_read(
                        first,
                        count,
                        &fetched,
                        ReadCtx::new()
                            .with_cache(&self.decoder_cache)
                            .with_recorder(&self.recorder),
                    )?;
                    for (idx, e) in elements.into_iter().enumerate() {
                        copy_element(&mut out, idx, &e);
                        crate::bufpool::give(e);
                    }
                }
                break plan;
            }
            if newly_suspect.iter().all(|d| suspects.contains(d)) {
                return Err(StoreError::DataLoss(format!(
                    "disks {newly_suspect:?} still unresponsive after degraded replan"
                )));
            }
            suspects.extend(newly_suspect);
            replans += 1;
        };
        // Leave breadcrumbs for the background repair pipeline: the
        // stripes this degraded read actually touched, per down disk —
        // they jump the repair queue so hot data regains redundancy
        // first. (No-ops until a `RepairManager` attaches.)
        if !suspects.is_empty() {
            let dps = self.scheme.data_per_stripe() as u64;
            for stripe in first / dps..=(last - 1) / dps {
                for &d in &suspects {
                    self.repair_queue.hint(d, stripe);
                }
            }
        }
        let net_delta = self.net_snapshot().since(&net_before);
        let stats = ReadStats {
            requested_elements: count,
            fetched_elements: plan.total_fetched(),
            repair_elements: plan.repair_fetched(),
            max_disk_load: plan.max_load(),
            cost: plan.cost(),
            degraded: !suspects.is_empty(),
            replans,
            net: net_delta,
            elapsed: t0.elapsed(),
        };

        let m = &self.metrics;
        m.reads.inc();
        if stats.degraded {
            m.degraded_reads.inc();
        }
        if !avoid.is_empty() {
            m.avoided_reads.inc();
        }
        if replans > 0 {
            m.replans.add(replans as u64);
        }
        m.fetched_elements.add(stats.fetched_elements as u64);
        m.repair_elements.add(stats.repair_elements as u64);
        if verify_spent > std::time::Duration::ZERO {
            m.verify_us.record_duration(verify_spent);
        }
        for f in &plan.fetches {
            m.disk_load.record(f.loc.disk, 1, self.element_size as u64);
        }
        m.read_us.record_duration(stats.elapsed);
        net_delta.record_into(&self.recorder);
        // Reactor-level I/O gauges (queue depth, in-flight submissions)
        // alongside the read counters, so a stats snapshot shows how
        // loaded the completion engine was at the end of this read.
        self.array.io_stats().snapshot().record_into(&self.recorder);
        // Kernel-level backend gauges: uring engine totals plus the
        // count of local file I/O errors absorbed into `None` results.
        ecfrm_sim::uring::snapshot().record_into(&self.recorder);
        self.recorder
            .gauge("io.file_errors")
            .set(ecfrm_sim::file_disk::io_error_count() as i64);

        Ok((out, stats))
    }

    /// All cell addresses of `stripe` in layout order (row by row) —
    /// the manifest's leaf order.
    fn stripe_addrs(&self, stripe: u64) -> Vec<(usize, u64)> {
        let layout = self.scheme.layout();
        let rows = layout.rows_per_stripe();
        let n = self.scheme.code().n();
        let mut addrs: Vec<(usize, u64)> = Vec::with_capacity(rows * n);
        for row in 0..rows {
            addrs.extend(
                layout
                    .row_locations(stripe, row)
                    .iter()
                    .map(|l| (l.disk, l.offset)),
            );
        }
        addrs
    }

    /// Verifying merkle scrub: check every stored element's checksum
    /// footer *and* its O(log n) merkle path against the stripe root —
    /// no decoding, no parity recomputation — and localize any mismatch
    /// to the exact `(stripe, element)`. Flushes pending writes first.
    ///
    /// Elements on failed disks are counted as missing, not corrupt.
    /// For the decode-based parity cross-check (slower, group-granular)
    /// see [`Self::scrub_decode`].
    ///
    /// ```
    /// use std::sync::Arc;
    /// use ecfrm_codes::RsCode;
    /// use ecfrm_core::Scheme;
    /// use ecfrm_store::ObjectStore;
    ///
    /// let store = ObjectStore::new(
    ///     Scheme::builder(Arc::new(RsCode::vandermonde(6, 3)))
    ///         .layout(ecfrm_core::LayoutKind::EcFrm)
    ///         .build(),
    ///     512);
    /// store.put("x", &vec![1u8; 40_000]).unwrap();
    /// assert!(store.scrub().unwrap().is_clean());
    /// ```
    pub fn scrub(&self) -> Result<ScrubReport, StoreError> {
        let stripes = {
            let mut inner = self.inner.lock();
            self.flush_locked(&mut inner);
            inner.stripes
        };
        let n = self.scheme.code().n();
        let mut corrupt_elements: Vec<(u64, usize)> = Vec::new();
        let mut corrupt_groups: Vec<(u64, usize)> = Vec::new();
        let mut missing = 0usize;
        for stripe in 0..stripes {
            let manifest = self
                .manifest(stripe)
                .expect("every sealed stripe has a manifest");
            // One batched read per stripe (one vectored request per
            // disk), cells arriving in leaf order.
            let addrs = self.stripe_addrs(stripe);
            let t_v = std::time::Instant::now();
            for (i, cell) in self.array.read_batch(&addrs).into_iter().enumerate() {
                let Some(cell) = cell else {
                    missing += 1;
                    continue;
                };
                self.metrics.elements_verified.inc();
                // Footer first (one hash), merkle path second: both must
                // agree for the element to count as intact.
                let ok = verify_footer(&self.key, addrs[i].1, &cell)
                    .map(|payload| manifest.verify_element(&self.key, i, payload))
                    .unwrap_or(false);
                if !ok {
                    self.metrics.verify_fail.inc();
                    corrupt_elements.push((stripe, i));
                    let group = (stripe, i / n);
                    if corrupt_groups.last() != Some(&group) {
                        corrupt_groups.push(group);
                    }
                }
                crate::bufpool::give(cell);
            }
            self.metrics.verify_us.record_duration(t_v.elapsed());
        }
        Ok(ScrubReport {
            stripes_checked: stripes,
            corrupt_groups,
            corrupt_elements,
            missing_elements: missing,
        })
    }

    /// Decode-based scrub: recompute every group's parities from stored
    /// data and compare with the stored parities. Group-granular (it
    /// cannot say *which* element of a dirty group lies) and pays a
    /// full re-encode per group; kept as the cross-check that needs no
    /// manifests and as the merkle scrub's benchmark baseline.
    ///
    /// Elements on failed disks are counted as missing, not corrupt.
    pub fn scrub_decode(&self) -> Result<ScrubReport, StoreError> {
        let stripes = {
            let mut inner = self.inner.lock();
            self.flush_locked(&mut inner);
            inner.stripes
        };
        let layout = self.scheme.layout();
        let code = self.scheme.code();
        let k = code.k();
        let n = code.n();
        let mut corrupt_groups = Vec::new();
        let mut missing = 0usize;
        for stripe in 0..stripes {
            let rows = layout.rows_per_stripe();
            let addrs = self.stripe_addrs(stripe);
            let mut stripe_cells = self.array.read_batch(&addrs).into_iter();
            for row in 0..rows {
                let cells: Vec<Option<Vec<u8>>> = stripe_cells.by_ref().take(n).collect();
                debug_assert_eq!(cells.len(), n);
                if cells.iter().any(|c| c.is_none()) {
                    missing += cells.iter().filter(|c| c.is_none()).count();
                    continue;
                }
                let mut cells: Vec<Vec<u8>> = cells.into_iter().map(Option::unwrap).collect();
                // Strip checksum footers; the parity equations hold over
                // payloads.
                for c in &mut cells {
                    c.truncate(self.element_size);
                }
                let data_refs: Vec<&[u8]> = cells[..k].iter().map(|v| v.as_slice()).collect();
                // Scratch parities cycle through the thread-local pool:
                // after the first group, re-derivation is allocation-free.
                let mut parity: Vec<Vec<u8>> = (0..n - k)
                    .map(|_| crate::bufpool::take(self.element_size))
                    .collect();
                code.encode(&data_refs, &mut parity);
                if parity
                    .iter()
                    .zip(&cells[k..])
                    .any(|(want, got)| want != got)
                {
                    corrupt_groups.push((stripe, row));
                }
                crate::bufpool::give_all(parity);
                crate::bufpool::give_all(cells);
            }
        }
        Ok(ScrubReport {
            stripes_checked: stripes,
            corrupt_groups,
            corrupt_elements: Vec::new(),
            missing_elements: missing,
        })
    }

    /// Probe a suspect disk: read its first element *and verify the
    /// checksum footer*. Verification matters — a disk silently
    /// corrupting answers happily serves probe reads, and without the
    /// footer check the failure detector would vouch for it forever.
    /// Used by the [`RepairManager`](crate::RepairManager) detector to
    /// decide transient blip vs lost/lying disk.
    pub fn probe_disk(&self, disk: usize) -> bool {
        match self.array.read_batch(&[(disk, 0)]).pop().flatten() {
            Some(cell) => verify_footer(&self.key, 0, &cell).is_some(),
            None => false,
        }
    }

    /// Direct handle to the underlying array (failure injection,
    /// corruption drills, inspection).
    pub fn array(&self) -> &ThreadedArray {
        &self.array
    }

    /// Mark a disk failed: subsequent reads plan around it.
    pub fn fail_disk(&self, disk: usize) -> Result<(), StoreError> {
        if disk >= self.scheme.n_disks() {
            return Err(StoreError::NoSuchDisk(disk));
        }
        self.array.disk(disk).fail();
        self.inner.lock().failed.insert(disk);
        Ok(())
    }

    /// Clear a disk's failure flag (transient failure resolved with no
    /// data loss — the paper's >90% case).
    pub fn heal_disk(&self, disk: usize) -> Result<(), StoreError> {
        if disk >= self.scheme.n_disks() {
            return Err(StoreError::NoSuchDisk(disk));
        }
        self.array.disk(disk).heal();
        self.inner.lock().failed.remove(&disk);
        Ok(())
    }

    /// Rebuild a lost disk from the survivors (paper §IV-D), write the
    /// reconstructed elements back, and return how many were rebuilt.
    ///
    /// Models the *permanent* failure path: the disk's contents are wiped
    /// and regenerated group by group.
    pub fn recover_disk(&self, disk: usize) -> Result<usize, StoreError> {
        if disk >= self.scheme.n_disks() {
            return Err(StoreError::NoSuchDisk(disk));
        }
        let (stripes, all_failed) = {
            let mut inner = self.inner.lock();
            self.flush_locked(&mut inner);
            (
                inner.stripes,
                inner.failed.iter().copied().collect::<Vec<_>>(),
            )
        };
        let recovery = DiskRecovery::plan_among(&self.scheme, disk, &all_failed, stripes)
            .map_err(StoreError::DataLoss)?;

        // Fetch all distinct sources in one parallel batch.
        let mut want: BTreeSet<(usize, u64)> = BTreeSet::new();
        for t in &recovery.tasks {
            for (_, loc) in &t.sources {
                want.insert((loc.disk, loc.offset));
            }
        }
        let addrs: Vec<(usize, u64)> = want.into_iter().collect();
        let results = self.array.read_batch(&addrs);
        let mut fetched: HashMap<Loc, Vec<u8>> = HashMap::with_capacity(addrs.len());
        for (&(d, o), bytes) in addrs.iter().zip(results) {
            let mut bytes = bytes.ok_or_else(|| {
                StoreError::DataLoss(format!("recovery source on disk {d} offset {o} unreadable"))
            })?;
            // A corrupt source would be silently encoded into the
            // rebuilt disk; verify before trusting it.
            if verify_footer(&self.key, o, &bytes).is_none() {
                self.metrics.verify_fail.inc();
                self.array.mark_suspect(d);
                return Err(StoreError::DataLoss(format!(
                    "recovery source on disk {d} offset {o} failed checksum verification"
                )));
            }
            bytes.truncate(self.element_size);
            fetched.insert(Loc::new(d, o), bytes);
        }

        // Rebuild every task in parallel, re-sealing each element with
        // a fresh checksum footer at its target offset. Decoding goes
        // through the decoder cache: a whole-disk rebuild hits the same
        // few erasure patterns over and over, so each coefficient
        // system is solved once instead of once per stripe.
        let rebuilt: Vec<((usize, u64), Vec<u8>)> = par_map(&recovery.tasks, |_, task| {
            let mut bytes = self
                .rebuild_cached(task, &fetched)
                .expect("plan sources span the target");
            append_footer(&self.key, task.target.offset, &mut bytes);
            ((task.target.disk, task.target.offset), bytes)
        });
        let count = rebuilt.len();

        self.array.disk(disk).wipe();
        self.array.disk(disk).heal();
        self.array.write_batch(rebuilt);
        self.inner.lock().failed.remove(&disk);
        self.push_event(StripeEvent::DiskRebuilt { disk });
        self.notify();
        Ok(count)
    }

    /// Rebuild every element `disk` stores for `stripe` (data *and*
    /// parity) from the survivors and write them back — the unit of
    /// work of the background [`RepairManager`](crate::RepairManager).
    ///
    /// Unlike [`Self::recover_disk`] this neither wipes nor heals the
    /// target: repair of a disk proceeds stripe by stripe while reads
    /// keep planning around it, and the disk is healed only once every
    /// stripe is back (so redundancy is restored atomically from the
    /// planner's point of view).
    ///
    /// # Errors
    /// [`StoreError::NoSuchDisk`] / [`StoreError::NoSuchStripe`] for
    /// bad coordinates; [`StoreError::DataLoss`] if too many disks are
    /// down or a repair source failed to answer (the source is marked
    /// suspect and the stripe can be retried).
    pub fn repair_stripe(&self, disk: usize, stripe: u64) -> Result<StripeRepair, StoreError> {
        if disk >= self.scheme.n_disks() {
            return Err(StoreError::NoSuchDisk(disk));
        }
        let (stripes, all_failed) = {
            let inner = self.inner.lock();
            (
                inner.stripes,
                inner.failed.iter().copied().collect::<Vec<_>>(),
            )
        };
        if stripe >= stripes {
            return Err(StoreError::NoSuchStripe(stripe));
        }
        // A helper caught lying (checksum mismatch on its partial sum or
        // raw element) is excluded and the stripe replanned around it —
        // the erasure code has spare sources precisely for this.
        let mut excluded = all_failed;
        for _attempt in 0..3 {
            let recovery = DiskRecovery::plan_stripes(&self.scheme, disk, &excluded, &[stripe])
                .map_err(StoreError::DataLoss)?;
            self.note_cross_domain(disk, &recovery);
            if self.combined_repair() {
                match self.repair_stripe_combined(&recovery) {
                    CombinedRepair::Done(r) => {
                        self.push_event(StripeEvent::Rewritten { stripe });
                        self.notify();
                        return Ok(r);
                    }
                    CombinedRepair::Corrupt(disks) => {
                        for d in disks {
                            self.array.mark_suspect(d);
                            if !excluded.contains(&d) {
                                excluded.push(d);
                            }
                        }
                        continue;
                    }
                    CombinedRepair::Retry => continue,
                    CombinedRepair::Fallback => {}
                }
            }
            let r = self.repair_stripe_naive(&recovery)?;
            self.push_event(StripeEvent::Rewritten { stripe });
            self.notify();
            return Ok(r);
        }
        Err(StoreError::DataLoss(format!(
            "repair of stripe {stripe} exhausted retries: helpers kept failing verification"
        )))
    }

    /// The PR-4 batched repair path: fetch every source element, verify,
    /// decode client-side. Also the per-stripe fallback when no helper
    /// speaks `CombineRange`.
    fn repair_stripe_naive(&self, recovery: &DiskRecovery) -> Result<StripeRepair, StoreError> {
        // One parallel batch for all distinct sources of this stripe.
        let mut want: BTreeSet<(usize, u64)> = BTreeSet::new();
        for t in &recovery.tasks {
            for (_, loc) in &t.sources {
                want.insert((loc.disk, loc.offset));
            }
        }
        let addrs: Vec<(usize, u64)> = want.into_iter().collect();
        let results = self.array.read_batch(&addrs);
        let mut fetched: HashMap<Loc, Vec<u8>> = HashMap::with_capacity(addrs.len());
        let mut bytes_read = 0u64;
        for (&(d, o), bytes) in addrs.iter().zip(results) {
            let Some(mut b) = bytes else {
                self.array.mark_suspect(d);
                return Err(StoreError::DataLoss(format!(
                    "repair source on disk {d} offset {o} unreadable"
                )));
            };
            bytes_read += b.len() as u64;
            // Repair must not launder corruption into freshly sealed
            // cells: a source that fails verification is as bad as one
            // that never answered — suspect it and retry the stripe.
            if verify_footer(&self.key, o, &b).is_none() {
                self.metrics.verify_fail.inc();
                self.array.mark_suspect(d);
                return Err(StoreError::DataLoss(format!(
                    "repair source on disk {d} offset {o} failed checksum verification"
                )));
            }
            b.truncate(self.element_size);
            fetched.insert(Loc::new(d, o), b);
        }

        // Stripe-level work is small; rebuild serially to keep repair's
        // CPU footprint low (parallelism comes from the worker pool).
        // Decoding reuses cached coefficient vectors — every stripe of a
        // disk rebuild solves the same erasure pattern — and each
        // rebuilt element is re-sealed with a fresh footer.
        let mut rebuilt: Vec<((usize, u64), Vec<u8>)> = Vec::with_capacity(recovery.tasks.len());
        let mut bytes_written = 0u64;
        for task in &recovery.tasks {
            let mut bytes = self
                .rebuild_cached(task, &fetched)
                .expect("plan sources span the target");
            append_footer(&self.key, task.target.offset, &mut bytes);
            bytes_written += bytes.len() as u64;
            rebuilt.push(((task.target.disk, task.target.offset), bytes));
        }
        let elements = rebuilt.len();
        self.metrics.repair_wire_bytes.add(bytes_read);
        self.array.write_batch(rebuilt);
        Ok(StripeRepair {
            elements,
            bytes_read,
            bytes_written,
        })
    }

    /// Decode one repair task through the [`DecoderCache`]: the solved
    /// coefficient vector for `(target position, available positions)`
    /// is computed once and reused for every stripe with the same
    /// erasure geometry.
    fn rebuild_cached(
        &self,
        task: &RepairTask,
        fetched: &HashMap<Loc, Vec<u8>>,
    ) -> Option<Vec<u8>> {
        let sources: Vec<(usize, &[u8])> = task
            .sources
            .iter()
            .map(|(p, loc)| fetched.get(loc).map(|b| (*p, b.as_slice())))
            .collect::<Option<Vec<_>>>()?;
        self.decoder_cache
            .reconstruct(task.pos, &sources, self.element_size)
    }

    /// Count planned repair sources that sit outside the failed disk's
    /// failure domain (distinct elements, the way they are fetched).
    fn note_cross_domain(&self, target: usize, recovery: &DiskRecovery) {
        let domains = self.scheme.domains();
        let distinct: BTreeSet<(usize, u64)> = recovery
            .tasks
            .iter()
            .flat_map(|t| &t.sources)
            .filter(|(_, loc)| !domains.same_domain(target, loc.disk))
            .map(|(_, loc)| (loc.disk, loc.offset))
            .collect();
        if !distinct.is_empty() {
            self.metrics.cross_domain_reads.add(distinct.len() as u64);
        }
    }

    /// The repair-traffic-optimal path: ship each helper's decode
    /// coefficients to the shard (`CombineRange`), let one *root* helper
    /// XOR-merge the other helpers' partial sums server-side, and ingest
    /// `rows` sealed regions instead of `k·rows` raw elements.
    ///
    /// Helpers that cannot combine (local `MemDisk`s, old servers whose
    /// latch flipped off, shards without an address) are served by raw
    /// element fetches and folded in client-side, so mixed-version
    /// clusters still save bytes on the capable subset.
    fn repair_stripe_combined(&self, recovery: &DiskRecovery) -> CombinedRepair {
        let tasks = &recovery.tasks;
        if tasks.is_empty() {
            return CombinedRepair::Done(StripeRepair {
                elements: 0,
                bytes_read: 0,
                bytes_written: 0,
            });
        }
        let outputs = tasks.len();
        // Column-assign decode coefficients: helper disk → offset →
        // (output lane, coefficient). Lane r rebuilds task r.
        let mut per_disk: BTreeMap<usize, BTreeMap<u64, Vec<(usize, u8)>>> = BTreeMap::new();
        for (r, task) in tasks.iter().enumerate() {
            let mut avail: Vec<usize> = task.sources.iter().map(|(p, _)| *p).collect();
            avail.sort_unstable();
            let Some(coeffs) = self.decoder_cache.coefficients(task.pos, &avail) else {
                return CombinedRepair::Fallback;
            };
            for (p, loc) in &task.sources {
                let i = avail.binary_search(p).expect("source position in avail");
                if coeffs[i] != 0 {
                    per_disk
                        .entry(loc.disk)
                        .or_default()
                        .entry(loc.offset)
                        .or_default()
                        .push((r, coeffs[i]));
                }
            }
        }
        // One contiguous window + row-major coefficient matrix per
        // helper; unused columns stay zero and are never verified or
        // summed server-side.
        struct Helper {
            disk: usize,
            offset: u64,
            count: usize,
            coeffs: Vec<u8>,
        }
        let mut capable: Vec<Helper> = Vec::new();
        let mut raw: Vec<Helper> = Vec::new();
        for (disk, cells) in per_disk {
            let first = *cells.keys().next().expect("non-empty helper");
            let last = *cells.keys().next_back().expect("non-empty helper");
            let count = (last - first + 1) as usize;
            let mut coeffs = vec![0u8; outputs * count];
            for (&o, lanes) in &cells {
                for &(r, c) in lanes {
                    coeffs[r * count + (o - first) as usize] = c;
                }
            }
            let helper = Helper {
                disk,
                offset: first,
                count,
                coeffs,
            };
            let backend = self.array.disk(disk);
            if backend.supports_combine() && backend.peer_addr().is_some() {
                capable.push(helper);
            } else {
                raw.push(helper);
            }
        }
        if capable.is_empty() {
            return CombinedRepair::Fallback;
        }
        // Root: the helper that merges everyone else's partials. Prefer
        // one inside the failed disk's rack so the fat flows (peer →
        // root, root → client) stay intra-domain.
        let domains = self.scheme.domains();
        let root_idx = capable
            .iter()
            .position(|h| domains.same_domain(h.disk, recovery.failed))
            .unwrap_or(0);
        let root = capable.swap_remove(root_idx);
        let spec = CombineSpec {
            offset: root.offset,
            count: root.count as u32,
            outputs: outputs as u32,
            coeffs: root.coeffs,
            key: (self.key.k0, self.key.k1),
            peers: capable
                .iter()
                .map(|h| CombinePeerSpec {
                    addr: self
                        .array
                        .disk(h.disk)
                        .peer_addr()
                        .expect("capable helper has an address"),
                    offset: h.offset,
                    count: h.count as u32,
                    coeffs: h.coeffs.clone(),
                })
                .collect(),
        };
        let reply = match self.array.disk(root.disk).combine(&spec) {
            CombineOutcome::Combined(reply) => reply,
            // The root's latch flipped mid-repair (old server) or the
            // request failed structurally: nothing to exclude, use the
            // batched path for this stripe.
            CombineOutcome::Unsupported | CombineOutcome::Failed(_) => {
                return CombinedRepair::Fallback;
            }
        };
        if reply.regions.is_empty() {
            // The root vetoed: some used element or peer failed
            // verification. Corrupt parties are excluded and the stripe
            // replanned; mere absence falls back to the batched path,
            // which has its own suspect handling.
            let mut corrupt = Vec::new();
            if reply.local_status.contains(&combine_status::CORRUPT) {
                corrupt.push(root.disk);
            }
            for (i, &s) in reply.peer_status.iter().enumerate() {
                if s == combine_status::CORRUPT {
                    corrupt.push(capable[i].disk);
                }
            }
            if corrupt.is_empty() {
                // No liar, but some peer was missing or declined. The
                // root cannot tell an old server (which drops the
                // connection on the unknown opcode) from a dead shard —
                // but the peer's own client can: its combine path
                // probes with a `BatchGet` and latches
                // `supports_combine` off when the shard answers. If any
                // latch flips, replan: the next attempt serves that
                // helper with raw fetches instead of vetoing again.
                let mut latched = false;
                for (i, &s) in reply.peer_status.iter().enumerate() {
                    if s != combine_status::MISSING && s != combine_status::DECLINED {
                        continue;
                    }
                    let h = &capable[i];
                    let backend = self.array.disk(h.disk);
                    let leaf = CombineSpec {
                        offset: h.offset,
                        count: h.count as u32,
                        outputs: outputs as u32,
                        coeffs: h.coeffs.clone(),
                        key: (self.key.k0, self.key.k1),
                        peers: Vec::new(),
                    };
                    if matches!(backend.combine(&leaf), CombineOutcome::Unsupported) {
                        latched = true;
                    }
                }
                return if latched {
                    CombinedRepair::Retry
                } else {
                    CombinedRepair::Fallback
                };
            }
            self.metrics.verify_fail.add(corrupt.len() as u64);
            return CombinedRepair::Corrupt(corrupt);
        }
        if reply.regions.len() != outputs {
            return CombinedRepair::Fallback;
        }
        // Verify and strip the root's seal on each merged region.
        let mut wire_bytes = 0u64;
        let mut partials: Vec<Vec<u8>> = Vec::with_capacity(outputs);
        for (r, region) in reply.regions.iter().enumerate() {
            wire_bytes += region.len() as u64;
            let Some(payload) = verify_footer(&self.key, root.offset + r as u64, region) else {
                self.metrics.verify_fail.inc();
                return CombinedRepair::Corrupt(vec![root.disk]);
            };
            let mut payload = payload.to_vec();
            payload.truncate(self.element_size);
            partials.push(payload);
        }
        // Helpers that could not combine: fetch their used elements raw
        // and fold them in client-side.
        if !raw.is_empty() {
            let mut addrs: Vec<(usize, u64)> = Vec::new();
            for h in &raw {
                for i in 0..h.count {
                    if (0..outputs).any(|r| h.coeffs[r * h.count + i] != 0) {
                        addrs.push((h.disk, h.offset + i as u64));
                    }
                }
            }
            let results = self.array.read_batch(&addrs);
            let mut cells: HashMap<(usize, u64), Vec<u8>> = HashMap::with_capacity(addrs.len());
            for (&(d, o), bytes) in addrs.iter().zip(results) {
                let Some(b) = bytes else {
                    self.array.mark_suspect(d);
                    return CombinedRepair::Fallback;
                };
                wire_bytes += b.len() as u64;
                let Some(payload) = verify_footer(&self.key, o, &b) else {
                    self.metrics.verify_fail.inc();
                    return CombinedRepair::Corrupt(vec![d]);
                };
                let mut payload = payload.to_vec();
                payload.truncate(self.element_size);
                cells.insert((d, o), payload);
            }
            for h in &raw {
                for (r, partial) in partials.iter_mut().enumerate() {
                    for i in 0..h.count {
                        let c = h.coeffs[r * h.count + i];
                        if c != 0 {
                            let cell = &cells[&(h.disk, h.offset + i as u64)];
                            ecfrm_gf::region::mul_add_region(c, cell, partial);
                        }
                    }
                }
            }
        }
        // Re-seal each completed sum at its home offset and write back.
        let mut rebuilt: Vec<((usize, u64), Vec<u8>)> = Vec::with_capacity(outputs);
        let mut bytes_written = 0u64;
        for (task, mut bytes) in tasks.iter().zip(partials) {
            append_footer(&self.key, task.target.offset, &mut bytes);
            bytes_written += bytes.len() as u64;
            rebuilt.push(((task.target.disk, task.target.offset), bytes));
        }
        self.metrics.repair_wire_bytes.add(wire_bytes);
        self.metrics.combined_stripes.inc();
        self.array.write_batch(rebuilt);
        CombinedRepair::Done(StripeRepair {
            elements: outputs,
            bytes_read: wire_bytes,
            bytes_written,
        })
    }

    /// Read several objects, planning/decoding in parallel. Results are
    /// in input order.
    pub fn get_many(&self, names: &[&str]) -> Vec<Result<Vec<u8>, StoreError>> {
        // Seal everything once up front so parallel reads never contend
        // on the flush lock.
        self.flush();
        par_map(names, |_, name| self.get(name))
    }

    /// Decoder-cache statistics: `(hits, misses)` of solved repair
    /// systems.
    pub fn decoder_cache_stats(&self) -> (u64, u64) {
        self.decoder_cache.stats()
    }

    /// Occupancy snapshot.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock();
        StoreStats {
            objects: inner.catalog.len(),
            logical_bytes: inner.logical_len,
            sealed_elements: inner.sealed_elements,
            stripes: inner.stripes,
            pending_bytes: inner.pending.len(),
            failed_disks: inner.failed.iter().copied().collect(),
        }
    }

    /// Metadata for an object, if present.
    pub fn meta(&self, name: &str) -> Option<ObjectMeta> {
        self.inner.lock().catalog.get(name).copied()
    }

    /// Names of all stored objects (unordered).
    pub fn list(&self) -> Vec<String> {
        self.inner.lock().catalog.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfrm_codes::{CandidateCode, LrcCode, RsCode};
    use ecfrm_core::LayoutKind;
    use std::sync::Arc;

    fn ecfrm_scheme(code: Arc<dyn CandidateCode>) -> Scheme {
        Scheme::builder(code).layout(LayoutKind::EcFrm).build()
    }

    fn lrc_store() -> ObjectStore {
        ObjectStore::new(ecfrm_scheme(Arc::new(LrcCode::new(6, 2, 2))), 64)
    }

    fn blob(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| ((i * 31 + seed as usize * 7 + 1) % 256) as u8)
            .collect()
    }

    #[test]
    fn put_get_roundtrip() {
        let store = lrc_store();
        let data = blob(10_000, 1);
        store.put("a", &data).unwrap();
        assert_eq!(store.get("a").unwrap(), data);
    }

    #[test]
    fn small_object_needs_flush_and_gets_it() {
        let store = lrc_store();
        let data = blob(10, 2);
        store.put("tiny", &data).unwrap();
        // Not yet sealed...
        assert_eq!(store.stats().stripes, 0);
        // ...but get() flushes automatically.
        assert_eq!(store.get("tiny").unwrap(), data);
        assert!(store.stats().stripes >= 1);
    }

    #[test]
    fn multiple_objects_are_separate() {
        let store = lrc_store();
        let a = blob(5000, 3);
        let b = blob(777, 4);
        let c = blob(12_345, 5);
        store.put("a", &a).unwrap();
        store.put("b", &b).unwrap();
        store.put("c", &c).unwrap();
        assert_eq!(store.get("b").unwrap(), b);
        assert_eq!(store.get("a").unwrap(), a);
        assert_eq!(store.get("c").unwrap(), c);
        assert_eq!(store.stats().objects, 3);
    }

    #[test]
    fn duplicate_name_rejected() {
        let store = lrc_store();
        store.put("x", &[1, 2, 3]).unwrap();
        assert!(matches!(
            store.put("x", &[4]),
            Err(StoreError::AlreadyExists(_))
        ));
    }

    #[test]
    fn missing_object_not_found() {
        let store = lrc_store();
        assert!(matches!(store.get("nope"), Err(StoreError::NotFound(_))));
    }

    #[test]
    fn range_reads() {
        let store = lrc_store();
        let data = blob(4000, 6);
        store.put("r", &data).unwrap();
        assert_eq!(store.get_range("r", 0, 10).unwrap(), &data[0..10]);
        assert_eq!(store.get_range("r", 100, 500).unwrap(), &data[100..600]);
        assert_eq!(store.get_range("r", 3990, 10).unwrap(), &data[3990..4000]);
        assert_eq!(store.get_range("r", 0, 0).unwrap().len(), 0);
        assert!(matches!(
            store.get_range("r", 3990, 11),
            Err(StoreError::RangeOutOfBounds { .. })
        ));
    }

    #[test]
    fn degraded_read_under_every_single_disk_failure() {
        let store = lrc_store();
        let data = blob(20_000, 7);
        store.put("d", &data).unwrap();
        for disk in 0..10 {
            store.fail_disk(disk).unwrap();
            assert_eq!(store.get("d").unwrap(), data, "failed disk {disk}");
            store.heal_disk(disk).unwrap();
        }
    }

    #[test]
    fn degraded_read_under_triple_failure_lrc() {
        // (6,2,2) LRC tolerates any 3 disk failures.
        let store = lrc_store();
        let data = blob(8_000, 8);
        store.put("t", &data).unwrap();
        for disks in [[0, 1, 2], [3, 6, 9], [7, 8, 9]] {
            for &d in &disks {
                store.fail_disk(d).unwrap();
            }
            assert_eq!(store.get("t").unwrap(), data, "failed {disks:?}");
            for &d in &disks {
                store.heal_disk(d).unwrap();
            }
        }
    }

    #[test]
    fn too_many_failures_is_data_loss_not_garbage() {
        let store = ObjectStore::new(ecfrm_scheme(Arc::new(RsCode::vandermonde(6, 3))), 64);
        let data = blob(10_000, 9);
        store.put("x", &data).unwrap();
        store.get("x").unwrap(); // seal
        for d in [0, 1, 2, 3] {
            store.fail_disk(d).unwrap();
        }
        assert!(matches!(store.get("x"), Err(StoreError::DataLoss(_))));
        for d in [0, 1, 2, 3] {
            store.heal_disk(d).unwrap();
        }
        assert_eq!(store.get("x").unwrap(), data);
    }

    #[test]
    fn recover_disk_restores_contents() {
        let store = lrc_store();
        let data = blob(30_000, 10);
        store.put("big", &data).unwrap();
        store.flush();
        let before = store.array.disk(4).len();
        assert!(before > 0);
        // Lose disk 4 for real.
        store.fail_disk(4).unwrap();
        store.array.disk(4).wipe();
        let rebuilt = store.recover_disk(4).unwrap();
        assert_eq!(rebuilt, before);
        assert!(store.stats().failed_disks.is_empty());
        assert_eq!(store.get("big").unwrap(), data);
    }

    #[test]
    fn recovery_works_for_every_disk_and_scheme_form() {
        let code: Arc<dyn CandidateCode> = Arc::new(RsCode::vandermonde(6, 3));
        for kind in [LayoutKind::Standard, LayoutKind::Rotated, LayoutKind::EcFrm] {
            let scheme = Scheme::builder(code.clone()).layout(kind).build();
            let name = scheme.name();
            let store = ObjectStore::new(scheme, 32);
            let data = blob(9_000, 11);
            store.put("o", &data).unwrap();
            store.flush();
            for d in 0..6 {
                store.fail_disk(d).unwrap();
                store.array.disk(d).wipe();
                store.recover_disk(d).unwrap();
                assert_eq!(store.get("o").unwrap(), data, "{name} disk {d}");
            }
        }
    }

    #[test]
    fn recover_under_concurrent_failures() {
        // Rebuild disks one at a time while two others are still down —
        // the multi-failure path the failure_drill example exercises.
        let store = lrc_store();
        let data = blob(15_000, 13);
        store.put("m", &data).unwrap();
        store.flush();
        for d in [0usize, 4, 8] {
            store.fail_disk(d).unwrap();
            store.array.disk(d).wipe();
        }
        for d in [0usize, 4, 8] {
            store.recover_disk(d).unwrap();
        }
        assert!(store.stats().failed_disks.is_empty());
        assert_eq!(store.get("m").unwrap(), data);
    }

    #[test]
    fn recover_beyond_tolerance_is_data_loss() {
        let store = ObjectStore::new(ecfrm_scheme(Arc::new(RsCode::vandermonde(6, 3))), 64);
        store.put("x", &blob(5_000, 14)).unwrap();
        store.flush();
        for d in [0usize, 1, 2, 3] {
            store.fail_disk(d).unwrap();
        }
        assert!(matches!(
            store.recover_disk(0),
            Err(StoreError::DataLoss(_))
        ));
    }

    #[test]
    fn repair_stripe_by_stripe_restores_a_wiped_disk() {
        let store = lrc_store();
        let data = blob(30_000, 15);
        store.put("big", &data).unwrap();
        store.flush();
        let elements = store.array.disk(4).len();
        store.fail_disk(4).unwrap();
        store.array.disk(4).wipe();
        let stripes = store.stats().stripes;
        let mut rebuilt = 0usize;
        for s in 0..stripes {
            let r = store.repair_stripe(4, s).unwrap();
            assert!(r.elements > 0);
            assert!(r.bytes_read > 0);
            // Rebuilt cells carry a fresh checksum footer each.
            assert_eq!(
                r.bytes_written,
                r.elements as u64 * (64 + FOOTER_LEN as u64)
            );
            rebuilt += r.elements;
        }
        assert_eq!(rebuilt, elements, "every lost element rebuilt");
        // Still planned around until healed — then fully back.
        assert!(store.get_with_stats("big").unwrap().1.degraded);
        store.heal_disk(4).unwrap();
        let (bytes, stats) = store.get_with_stats("big").unwrap();
        assert_eq!(bytes, data);
        assert!(!stats.degraded);
        assert_eq!(stats.repair_elements, 0);
    }

    #[test]
    fn repair_stripe_rejects_bad_coordinates() {
        let store = lrc_store();
        store.put("x", &blob(5_000, 16)).unwrap();
        store.flush();
        assert!(matches!(
            store.repair_stripe(10, 0),
            Err(StoreError::NoSuchDisk(10))
        ));
        assert!(matches!(
            store.repair_stripe(0, 999),
            Err(StoreError::NoSuchStripe(999))
        ));
    }

    #[test]
    fn suspect_lifecycle_clears_on_answer_and_dedups_hints() {
        use ecfrm_sim::{DiskBackend, FaultKind, FaultyDisk, MemDisk, ThreadedArray};
        let scheme = ecfrm_scheme(Arc::new(RsCode::vandermonde(6, 3)));
        let faulty: Vec<Arc<FaultyDisk>> = (0..scheme.n_disks())
            .map(|_| FaultyDisk::wrap(Arc::new(MemDisk::new())))
            .collect();
        let backends: Vec<Arc<dyn DiskBackend>> = faulty
            .iter()
            .map(|f| Arc::clone(f) as Arc<dyn DiskBackend>)
            .collect();
        let store = ObjectStore::with_array(scheme, 64, ThreadedArray::from_backends(backends));
        store.repair_queue().enable();
        let data = blob(30_000, 50);
        store.put("x", &data).unwrap();
        store.flush();

        // Disk 2 stops answering mid-workload: the read replans degraded
        // around it, marks it suspect, and stages repair hints.
        faulty[2].arm(FaultKind::Kill, 0);
        let (bytes, stats) = store.get_with_stats("x").unwrap();
        assert_eq!(bytes, data);
        assert!(stats.degraded);
        assert_eq!(stats.replans, 1, "exactly one mid-read replan");
        assert_eq!(store.array().suspects(), vec![2]);
        let staged = store.repair_queue().hint_count();
        assert!(staged > 0, "degraded read stages repair hints");

        // Re-reading the same range is another degraded read but must
        // not stage duplicate work.
        let (_, stats) = store.get_with_stats("x").unwrap();
        assert!(stats.degraded);
        assert_eq!(
            store.repair_queue().hint_count(),
            staged,
            "hints dedup across repeated degraded reads"
        );

        // The disk answers again (transient blip): the next read plans
        // normally, vouches for it, and the suspicion is withdrawn.
        faulty[2].clear();
        let (bytes, stats) = store.get_with_stats("x").unwrap();
        assert_eq!(bytes, data);
        assert!(!stats.degraded);
        assert_eq!(stats.replans, 0);
        assert!(store.array().suspects().is_empty(), "suspicion withdrawn");
        // Hints are staging only — nothing was promoted to repair work.
        assert_eq!(store.repair_queue().depth(), 0);
    }

    #[test]
    fn stats_track_growth() {
        let store = lrc_store();
        let s0 = store.stats();
        assert_eq!(s0.objects, 0);
        assert_eq!(s0.logical_bytes, 0);
        store.put("a", &blob(100, 12)).unwrap();
        let s1 = store.stats();
        assert_eq!(s1.objects, 1);
        assert_eq!(s1.logical_bytes, 100);
        assert_eq!(s1.pending_bytes, 100);
        store.flush();
        let s2 = store.stats();
        assert_eq!(s2.pending_bytes, 0);
        assert!(s2.sealed_elements > 0);
    }

    #[test]
    fn invalid_disk_operations() {
        let store = lrc_store();
        assert!(matches!(
            store.fail_disk(10),
            Err(StoreError::NoSuchDisk(10))
        ));
        assert!(matches!(
            store.heal_disk(99),
            Err(StoreError::NoSuchDisk(99))
        ));
        assert!(matches!(
            store.recover_disk(10),
            Err(StoreError::NoSuchDisk(10))
        ));
    }

    #[test]
    fn store_over_file_backed_disks() {
        use ecfrm_sim::{DiskBackend, FileDisk, ThreadedArray};
        let dir = std::env::temp_dir().join(format!("ecfrm-store-files-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let scheme = ecfrm_scheme(Arc::new(LrcCode::new(6, 2, 2)));
        let backends: Vec<Arc<dyn DiskBackend>> = (0..scheme.n_disks())
            .map(|d| {
                Arc::new(FileDisk::create(dir.join(format!("d{d}.bin")), 64 + FOOTER_LEN).unwrap())
                    as Arc<dyn DiskBackend>
            })
            .collect();
        let store = ObjectStore::with_array(scheme, 64, ThreadedArray::from_backends(backends));
        let data = blob(12_000, 30);
        store.put("f", &data).unwrap();
        assert_eq!(store.get("f").unwrap(), data);
        // Degraded read off real files.
        store.fail_disk(5).unwrap();
        assert_eq!(store.get("f").unwrap(), data);
        // Real loss: wipe the file, rebuild it.
        store.array().disk(5).wipe();
        store.recover_disk(5).unwrap();
        assert_eq!(store.get("f").unwrap(), data);
        assert!(store.scrub().unwrap().is_clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_stats_reflect_degradation() {
        let store = lrc_store();
        let data = blob(10_000, 20);
        store.put("s", &data).unwrap();
        let (bytes, normal) = store.get_with_stats("s").unwrap();
        assert_eq!(bytes, data);
        assert!(!normal.degraded);
        assert_eq!(normal.repair_elements, 0);
        assert!((normal.cost - 1.0).abs() < 1e-12);
        assert!(normal.fetched_elements >= normal.requested_elements);

        store.fail_disk(0).unwrap();
        let (bytes, degraded) = store.get_with_stats("s").unwrap();
        assert_eq!(bytes, data);
        assert!(degraded.degraded);
        assert!(degraded.cost >= 1.0);
    }

    #[test]
    fn scrub_clean_then_detects_corruption() {
        let store = lrc_store();
        store.put("c", &blob(9_000, 21)).unwrap();
        store.flush();
        let report = store.scrub().unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert!(report.stripes_checked > 0);
        assert!(store.scrub_decode().unwrap().is_clean());

        // Flip a byte of one stored element.
        let victim = store.array().disk(3);
        let original = victim.read(0).expect("element exists");
        let mut tampered = original.clone();
        tampered[0] ^= 0xFF;
        victim.write(0, tampered);
        let report = store.scrub().unwrap();
        assert!(!report.is_clean());
        assert_eq!(
            report.corrupt_elements.len(),
            1,
            "merkle scrub localizes the single flipped byte: {report:?}"
        );
        assert!(!report.corrupt_groups.is_empty());
        // The decode cross-check sees the same stripe dirty (at group
        // granularity only).
        let decode_report = store.scrub_decode().unwrap();
        assert!(!decode_report.is_clean());
        assert!(decode_report.corrupt_elements.is_empty());

        // Restore and re-verify.
        victim.write(0, original);
        assert!(store.scrub().unwrap().is_clean());
    }

    #[test]
    fn merkle_scrub_localizes_flip_to_the_exact_element() {
        // Corrupt one byte of one known cell and require the scrub to
        // name exactly that (stripe, leaf) via the merkle path.
        let store = lrc_store();
        store.put("c", &blob(9_000, 33)).unwrap();
        store.flush();
        let disk = 7usize;
        let victim = store.array().disk(disk);
        let original = victim.read(0).expect("element exists");
        let mut tampered = original.clone();
        tampered[17] ^= 0x04;
        victim.write(0, tampered);

        let report = store.scrub().unwrap();
        assert_eq!(report.corrupt_elements.len(), 1, "{report:?}");
        let (stripe, leaf) = report.corrupt_elements[0];
        assert_eq!(stripe, 0);
        // The named leaf really is disk 7 offset 0 in layout order.
        let layout = store.scheme().layout();
        let n = store.scheme().code().n();
        let loc = layout.row_locations(0, leaf / n)[leaf % n];
        assert_eq!((loc.disk, loc.offset), (disk, 0));
        // And the manifest confirms the element once restored.
        let payload = &original[..store.element_size()];
        assert!(store
            .manifest(0)
            .unwrap()
            .verify_element(&store.integrity_key(), leaf, payload));
    }

    #[test]
    fn verify_on_read_treats_corruption_as_erasure() {
        use ecfrm_sim::{DiskBackend, FaultKind, FaultyDisk, MemDisk, ThreadedArray};
        let scheme = ecfrm_scheme(Arc::new(RsCode::vandermonde(6, 3)));
        let faulty: Vec<Arc<FaultyDisk>> = (0..scheme.n_disks())
            .map(|_| FaultyDisk::wrap(Arc::new(MemDisk::new())))
            .collect();
        let backends: Vec<Arc<dyn DiskBackend>> = faulty
            .iter()
            .map(|f| Arc::clone(f) as Arc<dyn DiskBackend>)
            .collect();
        let store = ObjectStore::with_array(scheme, 64, ThreadedArray::from_backends(backends));
        store.repair_queue().enable();
        let data = blob(30_000, 51);
        store.put("x", &data).unwrap();
        store.flush();

        // Disk 2 starts lying: every read comes back bit-flipped. The
        // read must detect it, replan degraded, and still return
        // byte-correct data.
        faulty[2].arm(FaultKind::FlipCorrupt, 0);
        let (bytes, stats) = store.get_with_stats("x").unwrap();
        assert_eq!(bytes, data, "corrupted answers never reach the caller");
        assert!(stats.degraded);
        assert_eq!(stats.replans, 1);
        assert_eq!(store.array().suspects(), vec![2]);
        assert!(store.repair_queue().hint_count() > 0, "stripe hints staged");
        let snap = store.recorder().snapshot();
        assert!(*snap.counters.get("integrity.verify_fail").unwrap() > 0);

        // The probe sees through the lie too: corrupt answers must not
        // clear the suspicion.
        assert!(!store.probe_disk(2));
        // Honest again: probe passes, reads are clean and normal.
        faulty[2].clear();
        assert!(store.probe_disk(2));
        let (bytes, stats) = store.get_with_stats("x").unwrap();
        assert_eq!(bytes, data);
        assert!(!stats.degraded);
    }

    #[test]
    fn verify_toggle_and_manifest_exposure() {
        let store = lrc_store();
        assert!(store.verify_reads());
        store.set_verify_reads(false);
        assert!(!store.verify_reads());
        let data = blob(9_000, 52);
        store.put("x", &data).unwrap();
        // Unverified reads still strip footers and return exact bytes.
        assert_eq!(store.get("x").unwrap(), data);
        store.set_verify_reads(true);
        assert_eq!(store.get("x").unwrap(), data);
        // Every sealed stripe has a manifest; out-of-range is None.
        let stripes = store.stats().stripes;
        assert!(stripes > 0);
        for s in 0..stripes {
            assert!(store.manifest(s).is_some());
        }
        assert!(store.manifest(stripes).is_none());
    }

    #[test]
    fn scrub_counts_missing_on_failed_disk() {
        let store = lrc_store();
        store.put("m", &blob(5_000, 22)).unwrap();
        store.flush();
        store.fail_disk(1).unwrap();
        let report = store.scrub().unwrap();
        assert!(report.missing_elements > 0);
        assert!(report.corrupt_groups.is_empty());
    }

    #[test]
    fn degraded_reads_reuse_decoder_cache() {
        let store = lrc_store();
        let data = blob(20_000, 23);
        store.put("hot", &data).unwrap();
        store.fail_disk(2).unwrap();
        for _ in 0..10 {
            assert_eq!(store.get("hot").unwrap(), data);
        }
        let (hits, misses) = store.decoder_cache_stats();
        assert!(misses > 0, "cache must have been exercised");
        assert!(
            hits > misses * 3,
            "repeated degraded reads should mostly hit: {hits} hits / {misses} misses"
        );
    }

    #[test]
    fn get_many_parallel_matches_serial() {
        let store = lrc_store();
        let objects: Vec<(String, Vec<u8>)> = (0..20)
            .map(|i| (format!("o{i}"), blob(500 * (i + 1), i as u8)))
            .collect();
        for (n, d) in &objects {
            store.put(n, d).unwrap();
        }
        let names: Vec<&str> = objects.iter().map(|(n, _)| n.as_str()).collect();
        let got = store.get_many(&names);
        for ((_, want), g) in objects.iter().zip(got) {
            assert_eq!(g.unwrap(), &want[..]);
        }
        // Errors are per-object, not batch-fatal.
        let got = store.get_many(&["o1", "missing", "o2"]);
        assert!(got[0].is_ok());
        assert!(matches!(got[1], Err(StoreError::NotFound(_))));
        assert!(got[2].is_ok());
    }

    #[test]
    fn read_issues_one_rpc_per_touched_disk() {
        // (6,3) EC-FRM over 9 disks: a full-stripe read touches every
        // data element. The batched path must issue at most one
        // per-disk request per disk per read round.
        let store = ObjectStore::new(ecfrm_scheme(Arc::new(RsCode::vandermonde(6, 3))), 64);
        let data = blob(30_000, 40);
        store.put("x", &data).unwrap();
        store.flush();
        let before = store
            .recorder()
            .snapshot()
            .counters
            .get("read.rpcs")
            .copied()
            .unwrap_or(0);
        assert_eq!(store.get("x").unwrap(), data);
        let snap = store.recorder().snapshot();
        let rpcs = snap.counters.get("read.rpcs").copied().unwrap() - before;
        assert!(
            rpcs <= store.scheme().n_disks() as u64,
            "one read issued {rpcs} per-disk requests over {} disks",
            store.scheme().n_disks()
        );
        assert!(rpcs >= 1);
        let elems = snap.counters.get("read.batch_elems").copied().unwrap();
        assert!(elems as usize >= data.len() / 64, "batch_elems: {elems}");
    }

    #[test]
    fn sequential_layout_reads_coalesce_into_runs() {
        // EC-FRM places data sequentially across all disks, so a read
        // spanning two data rows hands (at least) the wrap-around disks
        // a strictly contiguous per-disk offset run. (Full-object reads
        // cross parity rows, which punch periodic holes in the per-disk
        // offsets — those batches stay `BatchGet`.)
        let store = ObjectStore::new(ecfrm_scheme(Arc::new(RsCode::vandermonde(6, 3))), 64);
        store.put("x", &blob(30_000, 41)).unwrap();
        store.flush();
        // Elements 0..11: every disk serves offset 0, the first two also
        // serve offset 1 → two [0, 1] runs.
        store.get_range("x", 0, 700).unwrap();
        let snap = store.recorder().snapshot();
        let runs = snap
            .counters
            .get("read.coalesced_runs")
            .copied()
            .unwrap_or(0);
        assert!(
            runs >= 2,
            "sequential layout produced {runs} coalesced runs, expected ≥ 2"
        );
    }

    #[test]
    fn count_coalesced_runs_rule() {
        // One contiguous run per disk of ≥2 elements counts; gaps,
        // singletons, and descending order do not.
        assert_eq!(count_coalesced_runs(&[]), 0);
        assert_eq!(count_coalesced_runs(&[(0, 5)]), 0);
        assert_eq!(count_coalesced_runs(&[(0, 5), (0, 6), (0, 7)]), 1);
        assert_eq!(count_coalesced_runs(&[(0, 5), (0, 7)]), 0);
        assert_eq!(count_coalesced_runs(&[(0, 6), (0, 5)]), 0);
        assert_eq!(
            count_coalesced_runs(&[(0, 0), (1, 3), (0, 1), (1, 4), (2, 9)]),
            2
        );
    }

    #[test]
    fn recorder_reports_kernel_backend() {
        let store = lrc_store();
        let snap = store.recorder().snapshot();
        let expected = format!("kernel_backend.{}", ecfrm_gf::kernel::active().name);
        assert!(
            snap.flatten()
                .iter()
                .any(|(name, v)| name == &expected && *v == 1),
            "snapshot must carry {expected}"
        );
    }

    #[test]
    fn list_and_meta() {
        let store = lrc_store();
        store.put("a", &[1]).unwrap();
        store.put("b", &[2, 3]).unwrap();
        let mut names = store.list();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(store.meta("b").unwrap().len, 2);
        assert!(store.meta("zz").is_none());
    }
}

//! An append-only erasure-coded object store — the "erasure coded cloud
//! storage system" the paper targets, assembled from the workspace's
//! pieces.
//!
//! The write path follows the paper's §I observation about cloud storage:
//! writes are append-only and buffered until a stripe is full, then the
//! whole stripe is erasure coded at once ("full stripe writes"), so write
//! performance is layout-independent and *reads* are the metric that
//! matters. The read path plans through the bound
//! [`Scheme`](ecfrm_core::Scheme) (normal or degraded depending on disk
//! state), executes the plan in parallel on a
//! [`ThreadedArray`](ecfrm_sim::ThreadedArray), and reconstructs lost
//! elements inline.
//!
//! Disk loss is handled *online*: a background [`RepairManager`] watches
//! for unresponsive disks, rebuilds their stripes through the same
//! batched read path and SIMD decode the foreground uses — stripes hot
//! foreground reads touched first — under a token-bucket rate limit
//! that keeps foreground tail latency bounded (see the
//! [`repair`] module docs for the full pipeline).
//!
//! ```
//! use std::sync::Arc;
//! use ecfrm_codes::LrcCode;
//! use ecfrm_core::Scheme;
//! use ecfrm_store::ObjectStore;
//!
//! let scheme = Scheme::builder(Arc::new(LrcCode::new(6, 2, 2)))
//!     .layout(ecfrm_core::LayoutKind::EcFrm)
//!     .build();
//! let store = ObjectStore::new(scheme, 1024); // 1 KiB elements
//! store.put("song.mp3", &vec![7u8; 10_000]).unwrap();
//!
//! // Normal read.
//! assert_eq!(store.get("song.mp3").unwrap().len(), 10_000);
//!
//! // Degraded read: any single disk may fail.
//! store.fail_disk(3).unwrap();
//! assert_eq!(store.get("song.mp3").unwrap(), vec![7u8; 10_000]);
//! ```

#![warn(missing_docs)]

pub mod bufpool;
pub mod error;
pub mod front;
pub mod meta;
pub mod repair;
pub mod store;

pub use error::StoreError;
pub use front::{FrontConfig, FrontDoor, QosClass, TenantSpec};
pub use meta::{
    ExtentRecord, ObjectMeta, ObjectStat, ReadStats, ScrubReport, StoreStats, StripeManifest,
    StripeRepair,
};
pub use repair::{RepairConfig, RepairManager, RepairProgress, RepairQueue, Replacer};
pub use store::{ObjectStore, ReadOpts, StripeEvent, StripeListener};

//! The multi-tenant object front door: namespace, QoS admission, and a
//! parity-aware read cache over an [`ObjectStore`].
//!
//! This is the layer that turns the stripe store into a *service*:
//!
//! * **Namespace** — tenants own named objects; each object is an
//!   ordered list of stream extents ([`ExtentRecord`], kept next to the
//!   stripe manifests in [`crate::meta`]). Writes append extents via
//!   [`ObjectStore::append`], so object data is erasure coded exactly
//!   like everything else and deletes are metadata-only.
//! * **Admission control** — per-tenant pay-after token buckets
//!   ([`ecfrm_util::TokenBucket`], the same limiter background repair
//!   uses) behind three priority classes: [`QosClass::Latency`] is
//!   never queued (over-budget requests are rejected immediately),
//!   [`QosClass::Bulk`] is smoothed by queueing up to
//!   [`FrontConfig::max_delay`], and [`QosClass::Repair`] queues up to
//!   the much larger [`FrontConfig::repair_max_delay`]. Queued waiters
//!   sleep in short slices and re-check [`FrontDoor::shutdown`]'s stop
//!   flag, so no server thread is ever parked past shutdown. Requests
//!   are validated (object exists, range in bounds) *before* the
//!   bucket is charged — a misspelled name cannot push a tenant into
//!   throttling. Bulk scans therefore cannot starve latency tenants:
//!   their requests are delayed or shed before they reach the disks.
//! * **Parity-aware read cache** — a bounded LRU of *decoded* data
//!   elements keyed by global element index (equivalently `(object,
//!   stripe, element)`, since extents never alias). Misses fetch whole
//!   elements through the store's planner, and — because EC-FRM's
//!   rotated layout can substitute a same-group parity at equal fetch
//!   cost — the miss path asks the planner to decode *around* the
//!   currently hottest disk ([`ReadOpts::avoid`]), measured live from
//!   the store's `disk_load` board. The cache is invalidated on stripe
//!   seal and repair rewrite via [`ObjectStore::subscribe_stripes`].
//!
//! # Example: two tenants, one throttled
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use ecfrm_codes::RsCode;
//! use ecfrm_core::{LayoutKind, Scheme};
//! use ecfrm_store::front::{FrontConfig, FrontDoor, QosClass, TenantSpec};
//! use ecfrm_store::{ObjectStore, StoreError};
//!
//! let scheme = Scheme::builder(Arc::new(RsCode::vandermonde(4, 2)))
//!     .layout(LayoutKind::EcFrm)
//!     .build();
//! let store = Arc::new(ObjectStore::new(scheme, 1024));
//! let front = FrontDoor::new(
//!     store,
//!     FrontConfig::builder()
//!         .cache_bytes(1 << 20)
//!         .max_delay(Duration::from_millis(1))
//!         .build(),
//! );
//! // "web" is latency class (no limit); "scan" is bulk, capped so hard
//! // that its second write overdraws the bucket and is shed.
//! front.register_tenant(TenantSpec::new("web", QosClass::Latency));
//! front.register_tenant(TenantSpec::new("scan", QosClass::Bulk).rate(1024));
//!
//! front.put("web", "profile.json", b"{\"name\":\"ada\"}").unwrap();
//! assert_eq!(front.read("web", "profile.json").unwrap(), b"{\"name\":\"ada\"}");
//!
//! front.put("scan", "chunk-0", &[0u8; 4096]).unwrap(); // rides the burst
//! let shed = front.put("scan", "chunk-1", &[0u8; 4096]);
//! assert!(matches!(shed, Err(StoreError::Throttled(_))));
//! assert_eq!(front.stat("web", "profile.json").unwrap().len, 14);
//! ```

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ecfrm_obs::{Counter, Gauge, Recorder};
use ecfrm_util::{Mutex, TokenBucket};

use crate::meta::{ExtentRecord, ObjectMeta, ObjectStat};
use crate::store::{ObjectStore, ReadOpts, StripeEvent};
use crate::StoreError;

/// Admission priority class of a tenant.
///
/// The class decides what happens when the tenant's token bucket is
/// overdrawn (see the module docs for the admission state machine):
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QosClass {
    /// Foreground, latency-sensitive traffic. Never queued: if the
    /// bucket cannot cover the request *now*, it is rejected
    /// ([`StoreError::Throttled`]) rather than delayed behind it.
    Latency,
    /// Throughput traffic (scans, backfills). Queued (the calling
    /// thread sleeps) up to [`FrontConfig::max_delay`], then rejected.
    Bulk,
    /// Background maintenance. Queued up to the much larger
    /// [`FrontConfig::repair_max_delay`] — repair-class callers would
    /// rather wait than shed work (this mirrors the `RepairManager`'s
    /// own use of the shared bucket), but the wait stays finite so a
    /// deeply overdrawn bucket cannot hold server threads hostage.
    Repair,
}

impl QosClass {
    /// The class's lowercase wire/CLI name.
    pub fn as_str(&self) -> &'static str {
        match self {
            QosClass::Latency => "latency",
            QosClass::Bulk => "bulk",
            QosClass::Repair => "repair",
        }
    }

    /// Parse a lowercase class name (as used by `--tenant` CLI specs).
    pub fn parse(s: &str) -> Option<QosClass> {
        match s {
            "latency" => Some(QosClass::Latency),
            "bulk" => Some(QosClass::Bulk),
            "repair" => Some(QosClass::Repair),
            _ => None,
        }
    }
}

impl std::fmt::Display for QosClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A tenant registration: name, priority class, and an optional rate
/// limit in bytes/second.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Tenant name (also the label on its `tenant.<name>.*` counters).
    pub name: String,
    /// Admission priority class.
    pub class: QosClass,
    /// Token-bucket refill rate in bytes/second. `None` means
    /// unlimited: the tenant is never throttled regardless of class.
    pub rate_limit: Option<u64>,
}

impl TenantSpec {
    /// A spec with no rate limit.
    pub fn new(name: &str, class: QosClass) -> Self {
        Self {
            name: name.to_string(),
            class,
            rate_limit: None,
        }
    }

    /// Set the bucket's refill rate in bytes/second.
    pub fn rate(mut self, bytes_per_sec: u64) -> Self {
        self.rate_limit = Some(bytes_per_sec);
        self
    }

    /// Parse a CLI spec `name:class[:rate]`, e.g. `web:latency` or
    /// `scan:bulk:8000000`. Returns a usage message on malformed input.
    pub fn parse(s: &str) -> Result<TenantSpec, String> {
        let mut parts = s.split(':');
        let name = parts.next().filter(|n| !n.is_empty()).ok_or_else(|| {
            format!("bad tenant spec `{s}`: expected name:class[:rate_bytes_per_sec]")
        })?;
        let class = parts
            .next()
            .and_then(QosClass::parse)
            .ok_or_else(|| format!("bad tenant spec `{s}`: class must be latency|bulk|repair"))?;
        let rate = match parts.next() {
            None => None,
            Some(r) => Some(
                r.parse::<u64>()
                    .map_err(|_| format!("bad tenant spec `{s}`: rate must be an integer"))?,
            ),
        };
        if parts.next().is_some() {
            return Err(format!("bad tenant spec `{s}`: too many fields"));
        }
        Ok(TenantSpec {
            name: name.to_string(),
            class,
            rate_limit: rate,
        })
    }
}

/// Front-door configuration. Build with [`FrontConfig::builder`] (the
/// same builder-knob shape as `RemoteDiskConfig`).
#[derive(Debug, Clone)]
pub struct FrontConfig {
    /// Decoded-element cache capacity in bytes (`0` disables caching).
    pub cache_bytes: usize,
    /// Master admission switch. Off, every request is admitted
    /// immediately and buckets are not charged — the bench's
    /// "admission off" rows.
    pub admission: bool,
    /// How long a [`QosClass::Bulk`] request may be queued before it is
    /// rejected.
    pub max_delay: Duration,
    /// How long a [`QosClass::Repair`] request may be queued before it
    /// is rejected. Large but finite: background work prefers late to
    /// never, yet a deeply overdrawn bucket must not park server
    /// threads for unbounded time.
    pub repair_max_delay: Duration,
    /// Hot-disk threshold for the cache miss path: a disk is avoided
    /// when its share of recent planned fetches exceeds `hot_ratio ×`
    /// the per-disk mean (and traffic is non-trivial).
    pub hot_ratio: f64,
    /// How often the live `disk_load` board is re-sampled to re-elect
    /// the hot disk.
    pub load_refresh: Duration,
}

impl FrontConfig {
    /// Start building a config from the defaults: 32 MiB cache,
    /// admission on, 500 ms max bulk delay, 30 s max repair delay, hot
    /// ratio 1.5, 100 ms load refresh.
    pub fn builder() -> FrontConfigBuilder {
        FrontConfigBuilder {
            cfg: FrontConfig {
                cache_bytes: 32 << 20,
                admission: true,
                max_delay: Duration::from_millis(500),
                repair_max_delay: Duration::from_secs(30),
                hot_ratio: 1.5,
                load_refresh: Duration::from_millis(100),
            },
        }
    }
}

impl Default for FrontConfig {
    fn default() -> Self {
        FrontConfig::builder().build()
    }
}

/// Builder for [`FrontConfig`].
#[derive(Debug, Clone)]
pub struct FrontConfigBuilder {
    cfg: FrontConfig,
}

impl FrontConfigBuilder {
    /// Decoded-element cache capacity in bytes (`0` disables caching).
    pub fn cache_bytes(mut self, bytes: usize) -> Self {
        self.cfg.cache_bytes = bytes;
        self
    }

    /// Enable/disable admission control (buckets are not charged while
    /// off).
    pub fn admission(mut self, on: bool) -> Self {
        self.cfg.admission = on;
        self
    }

    /// Maximum queueing delay for [`QosClass::Bulk`] requests.
    pub fn max_delay(mut self, d: Duration) -> Self {
        self.cfg.max_delay = d;
        self
    }

    /// Maximum queueing delay for [`QosClass::Repair`] requests.
    pub fn repair_max_delay(mut self, d: Duration) -> Self {
        self.cfg.repair_max_delay = d;
        self
    }

    /// Hot-disk threshold (multiple of the per-disk mean load).
    pub fn hot_ratio(mut self, ratio: f64) -> Self {
        self.cfg.hot_ratio = ratio.max(1.0);
        self
    }

    /// How often the hot disk is re-elected from the `disk_load` board.
    pub fn load_refresh(mut self, d: Duration) -> Self {
        self.cfg.load_refresh = d;
        self
    }

    /// Finish building.
    pub fn build(self) -> FrontConfig {
        self.cfg
    }
}

/// One registered tenant: spec, bucket, and pre-resolved counters.
struct Tenant {
    spec: TenantSpec,
    bucket: Option<TokenBucket>,
    reads: Counter,
    read_bytes: Counter,
    writes: Counter,
    write_bytes: Counter,
    delayed: Counter,
    rejected: Counter,
}

impl Tenant {
    fn new(spec: TenantSpec, recorder: &Recorder) -> Self {
        let c = |what: &str| recorder.counter(&format!("tenant.{}.{what}", spec.name));
        Self {
            bucket: spec.rate_limit.map(TokenBucket::new),
            reads: c("reads"),
            read_bytes: c("read_bytes"),
            writes: c("writes"),
            write_bytes: c("write_bytes"),
            delayed: c("delayed"),
            rejected: c("rejected"),
            spec,
        }
    }
}

/// Bounded LRU of decoded data elements, keyed by global element index.
struct ElementCache {
    cap: usize,
    inner: Mutex<CacheInner>,
    hits: Counter,
    misses: Counter,
    evicted: Counter,
    invalidated: Counter,
    bytes: Gauge,
}

#[derive(Default)]
struct CacheInner {
    /// element → (decoded payload, owning stripe, LRU tick).
    map: HashMap<u64, (Arc<Vec<u8>>, u64, u64)>,
    /// LRU order: tick → element (ticks are unique).
    lru: BTreeMap<u64, u64>,
    /// stripe → elements cached from it (invalidation index).
    by_stripe: HashMap<u64, Vec<u64>>,
    bytes: usize,
    tick: u64,
}

impl ElementCache {
    fn new(cap: usize, recorder: &Recorder) -> Self {
        Self {
            cap,
            inner: Mutex::new(CacheInner::default()),
            hits: recorder.counter("cache.hit"),
            misses: recorder.counter("cache.miss"),
            evicted: recorder.counter("cache.evict"),
            invalidated: recorder.counter("cache.invalidate"),
            bytes: recorder.gauge("cache.bytes"),
        }
    }

    fn get(&self, elem: u64) -> Option<Arc<Vec<u8>>> {
        if self.cap == 0 {
            self.misses.inc();
            return None;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&elem) {
            Some((bytes, _, t)) => {
                let old = std::mem::replace(t, tick);
                let out = Arc::clone(bytes);
                inner.lru.remove(&old);
                inner.lru.insert(tick, elem);
                self.hits.inc();
                Some(out)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    fn insert(&self, elem: u64, stripe: u64, payload: Arc<Vec<u8>>) {
        if self.cap == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.map.contains_key(&elem) {
            return; // a racing miss already filled it
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.bytes += payload.len();
        inner.map.insert(elem, (payload, stripe, tick));
        inner.lru.insert(tick, elem);
        inner.by_stripe.entry(stripe).or_default().push(elem);
        while inner.bytes > self.cap {
            let Some((&t, &e)) = inner.lru.iter().next() else {
                break;
            };
            inner.lru.remove(&t);
            if let Some((payload, s, _)) = inner.map.remove(&e) {
                inner.bytes -= payload.len();
                if let Some(v) = inner.by_stripe.get_mut(&s) {
                    v.retain(|&x| x != e);
                    if v.is_empty() {
                        inner.by_stripe.remove(&s);
                    }
                }
                self.evicted.inc();
            }
        }
        self.bytes.set(inner.bytes as i64);
    }

    fn invalidate_stripe(&self, stripe: u64) {
        if self.cap == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        let Some(elems) = inner.by_stripe.remove(&stripe) else {
            return;
        };
        for e in elems {
            if let Some((payload, _, t)) = inner.map.remove(&e) {
                inner.bytes -= payload.len();
                inner.lru.remove(&t);
                self.invalidated.inc();
            }
        }
        self.bytes.set(inner.bytes as i64);
    }

    fn invalidate_all(&self) {
        if self.cap == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        self.invalidated.add(inner.map.len() as u64);
        *inner = CacheInner {
            tick: inner.tick,
            ..CacheInner::default()
        };
        self.bytes.set(0);
    }
}

/// Hot-disk election state: the previous `disk_load` sample and the
/// currently avoided disk.
struct LoadWatch {
    at: Instant,
    elements: Vec<u64>,
    hot: Option<usize>,
}

/// Front-door counters that are not per-tenant or cache-owned.
struct FrontMetrics {
    admit_ok: Counter,
    admit_delayed: Counter,
    admit_rejected: Counter,
    objects: Gauge,
    hot_avoided: Counter,
}

/// The multi-tenant object layer over an [`ObjectStore`]. See the
/// [module docs](self) for the full design and a runnable example.
pub struct FrontDoor {
    store: Arc<ObjectStore>,
    cfg: FrontConfig,
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
    /// tenant → object → extent record.
    namespace: Mutex<HashMap<String, HashMap<String, ExtentRecord>>>,
    cache: Arc<ElementCache>,
    metrics: FrontMetrics,
    watch: Mutex<LoadWatch>,
    admission: AtomicBool,
    /// Raised by [`Self::shutdown`]: unparks every admission waiter
    /// (they reject instead of finishing their sleep) so connection
    /// threads can be joined promptly.
    stopped: AtomicBool,
}

impl std::fmt::Debug for FrontDoor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FrontDoor({:?}, cache {} B)",
            self.store, self.cfg.cache_bytes
        )
    }
}

impl FrontDoor {
    /// Stand a front door up over `store`. Subscribes to the store's
    /// stripe events for cache invalidation; counters register on the
    /// store's [`Recorder`].
    pub fn new(store: Arc<ObjectStore>, cfg: FrontConfig) -> Arc<FrontDoor> {
        let recorder = store.recorder();
        let cache = Arc::new(ElementCache::new(cfg.cache_bytes, recorder));
        let metrics = FrontMetrics {
            admit_ok: recorder.counter("admit.ok"),
            admit_delayed: recorder.counter("admit.delayed"),
            admit_rejected: recorder.counter("admit.rejected"),
            objects: recorder.gauge("front.objects"),
            hot_avoided: recorder.counter("front.hot_avoided"),
        };
        let n = store.scheme().n_disks();
        let front = Arc::new(FrontDoor {
            admission: AtomicBool::new(cfg.admission),
            stopped: AtomicBool::new(false),
            cfg,
            tenants: Mutex::new(HashMap::new()),
            namespace: Mutex::new(HashMap::new()),
            cache: Arc::clone(&cache),
            metrics,
            watch: Mutex::new(LoadWatch {
                at: Instant::now(),
                elements: vec![0; n],
                hot: None,
            }),
            store: Arc::clone(&store),
        });
        // Coherence fence: drop cached elements whose stripe was sealed
        // or rewritten (see `StripeEvent` — conservative today, since
        // sealed payloads are immutable and repair rewrites identical
        // bytes, but it keeps the cache honest by construction).
        store.subscribe_stripes(Arc::new({
            let cache = Arc::clone(&cache);
            move |ev| match ev {
                StripeEvent::Sealed { first, count } => {
                    for s in first..first + count {
                        cache.invalidate_stripe(s);
                    }
                }
                StripeEvent::Rewritten { stripe } => cache.invalidate_stripe(stripe),
                StripeEvent::DiskRebuilt { .. } => cache.invalidate_all(),
            }
        }));
        front
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<ObjectStore> {
        &self.store
    }

    /// Register (or replace) a tenant. Unregistered tenants are
    /// auto-registered on first use as unlimited [`QosClass::Latency`].
    pub fn register_tenant(&self, spec: TenantSpec) {
        let t = Arc::new(Tenant::new(spec, self.store.recorder()));
        self.tenants.lock().insert(t.spec.name.clone(), t);
    }

    /// Turn admission on/off at runtime (the bench's A/B switch).
    pub fn set_admission(&self, on: bool) {
        self.admission.store(on, Ordering::Relaxed);
    }

    /// Begin shutdown: every queued admission waiter unparks at its
    /// next poll slice and rejects ([`StoreError::Throttled`]), and no
    /// new request queues. Requests that need no delay still pass, so
    /// in-flight drains complete. Permanent — called by the serving
    /// layer when its listener stops, so parked connection threads can
    /// be joined.
    pub fn shutdown(&self) {
        self.stopped.store(true, Ordering::Release);
    }

    fn tenant(&self, name: &str) -> Arc<Tenant> {
        let mut tenants = self.tenants.lock();
        if let Some(t) = tenants.get(name) {
            return Arc::clone(t);
        }
        let t = Arc::new(Tenant::new(
            TenantSpec::new(name, QosClass::Latency),
            self.store.recorder(),
        ));
        tenants.insert(name.to_string(), Arc::clone(&t));
        t
    }

    /// The admission state machine: charge `bytes` against the
    /// tenant's bucket, passing / delaying / rejecting by class.
    ///
    /// Callers validate the request (object exists, range in bounds)
    /// *before* admitting, so invalid requests never spend budget.
    /// Delayed waiters sleep in short slices, re-checking the
    /// [`Self::shutdown`] flag each round, and every class's deadline
    /// is finite — no server thread parks here unboundedly.
    fn admit(&self, tenant: &Tenant, bytes: u64) -> Result<(), StoreError> {
        /// How coarsely a queued waiter observes the shutdown flag.
        const POLL: Duration = Duration::from_millis(10);

        if !self.admission.load(Ordering::Relaxed) {
            return Ok(());
        }
        let Some(bucket) = &tenant.bucket else {
            self.metrics.admit_ok.inc();
            return Ok(());
        };
        let wait = bucket.ready_in();
        if wait > Duration::ZERO {
            let deadline = match tenant.spec.class {
                QosClass::Latency => Duration::ZERO,
                QosClass::Bulk => self.cfg.max_delay,
                QosClass::Repair => self.cfg.repair_max_delay,
            };
            if wait > deadline {
                tenant.rejected.inc();
                self.metrics.admit_rejected.inc();
                return Err(StoreError::Throttled(format!(
                    "tenant {} ({}) over rate limit: bucket ready in {wait:?}",
                    tenant.spec.name, tenant.spec.class,
                )));
            }
            let mut remaining = wait;
            while remaining > Duration::ZERO {
                if self.stopped.load(Ordering::Acquire) {
                    tenant.rejected.inc();
                    self.metrics.admit_rejected.inc();
                    return Err(StoreError::Throttled(format!(
                        "front door shutting down: tenant {} not admitted",
                        tenant.spec.name,
                    )));
                }
                let slice = remaining.min(POLL);
                std::thread::sleep(slice);
                remaining = remaining.saturating_sub(slice);
            }
            tenant.delayed.inc();
            self.metrics.admit_delayed.inc();
        }
        bucket.spend(bytes);
        self.metrics.admit_ok.inc();
        Ok(())
    }

    /// Create an empty object.
    ///
    /// # Errors
    /// [`StoreError::AlreadyExists`] if the tenant already has an
    /// object with that name; [`StoreError::Throttled`] on admission
    /// rejection.
    pub fn create(&self, tenant: &str, object: &str) -> Result<(), StoreError> {
        let t = self.tenant(tenant);
        // Validate before admitting (and without holding the namespace
        // lock across a potential admission sleep) so an invalid
        // request costs no budget; the post-admission insert re-checks
        // in case a racing create won meanwhile.
        {
            let ns = self.namespace.lock();
            if ns.get(tenant).is_some_and(|o| o.contains_key(object)) {
                return Err(StoreError::AlreadyExists(format!("{tenant}/{object}")));
            }
        }
        self.admit(&t, 0)?;
        let mut ns = self.namespace.lock();
        let objects = ns.entry(tenant.to_string()).or_default();
        if objects.contains_key(object) {
            return Err(StoreError::AlreadyExists(format!("{tenant}/{object}")));
        }
        objects.insert(
            object.to_string(),
            ExtentRecord {
                extents: Vec::new(),
                version: 1,
            },
        );
        self.metrics.objects.add(1);
        Ok(())
    }

    /// Append `bytes` to an existing object as one new extent.
    ///
    /// # Errors
    /// [`StoreError::NotFound`] if the object does not exist;
    /// [`StoreError::Throttled`] on admission rejection (the bytes are
    /// not written).
    pub fn write(&self, tenant: &str, object: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let t = self.tenant(tenant);
        // Check existence *before* admitting or appending so a
        // misspelled name neither spends the tenant's budget nor leaks
        // stream bytes.
        {
            let ns = self.namespace.lock();
            ns.get(tenant)
                .and_then(|o| o.get(object))
                .ok_or_else(|| StoreError::NotFound(format!("{tenant}/{object}")))?;
        }
        self.admit(&t, bytes.len() as u64)?;
        let extent = self.store.append(bytes);
        let mut ns = self.namespace.lock();
        let rec = ns
            .get_mut(tenant)
            .and_then(|o| o.get_mut(object))
            .ok_or_else(|| StoreError::NotFound(format!("{tenant}/{object}")))?;
        rec.extents.push(extent);
        rec.version += 1;
        t.writes.inc();
        t.write_bytes.add(bytes.len() as u64);
        Ok(())
    }

    /// [`Self::create`] followed by [`Self::write`].
    ///
    /// # Errors
    /// As for the two steps.
    pub fn put(&self, tenant: &str, object: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.create(tenant, object)?;
        self.write(tenant, object, bytes)
    }

    /// Read a whole object.
    ///
    /// # Errors
    /// [`StoreError::NotFound`] / [`StoreError::Throttled`], or any
    /// store read error.
    pub fn read(&self, tenant: &str, object: &str) -> Result<Vec<u8>, StoreError> {
        let len = self.stat(tenant, object)?.len;
        self.read_range(tenant, object, 0, len)
    }

    /// Read `len` bytes of an object starting at byte `start`,
    /// read-through the decoded-element cache.
    ///
    /// # Errors
    /// [`StoreError::NotFound`], [`StoreError::RangeOutOfBounds`],
    /// [`StoreError::Throttled`], or any store read error.
    pub fn read_range(
        &self,
        tenant: &str,
        object: &str,
        start: u64,
        len: u64,
    ) -> Result<Vec<u8>, StoreError> {
        let t = self.tenant(tenant);
        let rec = {
            let ns = self.namespace.lock();
            ns.get(tenant)
                .and_then(|o| o.get(object))
                .cloned()
                .ok_or_else(|| StoreError::NotFound(format!("{tenant}/{object}")))?
        };
        let total = rec.len();
        if start.checked_add(len).is_none_or(|end| end > total) {
            return Err(StoreError::RangeOutOfBounds {
                name: format!("{tenant}/{object}"),
                len: total,
            });
        }
        // Admit only after the request is known valid, so NotFound /
        // RangeOutOfBounds traffic cannot throttle a tenant.
        self.admit(&t, len)?;
        let mut out = vec![0u8; len as usize];
        let mut filled = 0usize;
        for (extent, off, run) in rec.slices(start, len) {
            let dst = &mut out[filled..filled + run as usize];
            self.read_extent_cached(extent, off, run, dst)?;
            filled += run as usize;
        }
        t.reads.inc();
        t.read_bytes.add(len);
        Ok(out)
    }

    /// Object metadata: length, version, extent count.
    ///
    /// # Errors
    /// [`StoreError::NotFound`].
    pub fn stat(&self, tenant: &str, object: &str) -> Result<ObjectStat, StoreError> {
        let ns = self.namespace.lock();
        let rec = ns
            .get(tenant)
            .and_then(|o| o.get(object))
            .ok_or_else(|| StoreError::NotFound(format!("{tenant}/{object}")))?;
        Ok(ObjectStat {
            len: rec.len(),
            version: rec.version,
            extents: rec.extents.len(),
        })
    }

    /// Delete an object: the namespace record is dropped, the stream
    /// bytes become unreferenced (append-only store — space is
    /// reclaimed by future compaction, not now). The name is
    /// immediately reusable.
    ///
    /// # Errors
    /// [`StoreError::NotFound`].
    pub fn delete(&self, tenant: &str, object: &str) -> Result<(), StoreError> {
        let mut ns = self.namespace.lock();
        let objects = ns
            .get_mut(tenant)
            .ok_or_else(|| StoreError::NotFound(format!("{tenant}/{object}")))?;
        objects
            .remove(object)
            .ok_or_else(|| StoreError::NotFound(format!("{tenant}/{object}")))?;
        self.metrics.objects.add(-1);
        Ok(())
    }

    /// A tenant's object names, sorted.
    pub fn list(&self, tenant: &str) -> Vec<String> {
        let ns = self.namespace.lock();
        let mut names: Vec<String> = ns
            .get(tenant)
            .map(|o| o.keys().cloned().collect())
            .unwrap_or_default();
        names.sort();
        names
    }

    /// Cache hit/miss totals so far — `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits.get(), self.cache.misses.get())
    }

    /// Fill `out` with `run` bytes starting `off` into `extent`,
    /// serving whole decoded elements from the cache and batch-reading
    /// contiguous miss runs through the planner (avoiding the hottest
    /// disk when one stands out).
    fn read_extent_cached(
        &self,
        extent: ObjectMeta,
        off: u64,
        run: u64,
        out: &mut [u8],
    ) -> Result<(), StoreError> {
        let es = self.store.element_size() as u64;
        let abs = ObjectMeta {
            offset: extent.offset + off,
            len: run,
        };
        let (first, last) = abs.element_range(self.store.element_size());
        // Object-relative copy helper: element `e`'s payload overlaps
        // `out` at stream bytes [max(e*es, abs.offset), min((e+1)*es,
        // abs end)).
        let copy_into = |out: &mut [u8], e: u64, payload: &[u8]| {
            let estart = e * es;
            let s = estart.max(abs.offset);
            let t = (estart + payload.len() as u64).min(abs.offset + abs.len);
            if s < t {
                out[(s - abs.offset) as usize..(t - abs.offset) as usize]
                    .copy_from_slice(&payload[(s - estart) as usize..(t - estart) as usize]);
            }
        };
        let mut misses: Vec<u64> = Vec::new();
        for e in first..last {
            match self.cache.get(e) {
                Some(payload) => copy_into(out, e, &payload),
                None => misses.push(e),
            }
        }
        if misses.is_empty() {
            return Ok(());
        }
        let dps = self.store.scheme().data_per_stripe() as u64;
        let opts = self.read_opts();
        // Batch contiguous miss runs into single planned reads.
        let mut i = 0;
        while i < misses.len() {
            let a = misses[i];
            let mut j = i + 1;
            while j < misses.len() && misses[j] == misses[j - 1] + 1 {
                j += 1;
            }
            let b = misses[j - 1] + 1;
            let span = ObjectMeta {
                offset: a * es,
                len: (b - a) * es,
            };
            let (bytes, _) = self.store.read_extent(span, 0, span.len, &opts)?;
            for (k, chunk) in bytes.chunks_exact(es as usize).enumerate() {
                let e = a + k as u64;
                let payload = Arc::new(chunk.to_vec());
                copy_into(out, e, &payload);
                self.cache.insert(e, e / dps, payload);
            }
            i = j;
        }
        Ok(())
    }

    /// Per-miss [`ReadOpts`]: avoid the hot disk, if one is elected.
    fn read_opts(&self) -> ReadOpts {
        let mut opts = ReadOpts::default();
        if let Some(d) = self.hot_disk() {
            opts.avoid.push(d);
            self.metrics.hot_avoided.inc();
        }
        opts
    }

    /// The currently hottest disk, from deltas of the store's
    /// cumulative `disk_load` board, re-elected every
    /// [`FrontConfig::load_refresh`]. `None` while traffic is light or
    /// balanced.
    fn hot_disk(&self) -> Option<usize> {
        let mut watch = self.watch.lock();
        if watch.at.elapsed() >= self.cfg.load_refresh {
            let snap = self.store.disk_loads();
            let delta: Vec<u64> = snap
                .elements
                .iter()
                .zip(&watch.elements)
                .map(|(now, then)| now.saturating_sub(*then))
                .collect();
            let total: u64 = delta.iter().sum();
            let mean = total as f64 / delta.len().max(1) as f64;
            watch.hot = delta
                .iter()
                .enumerate()
                .max_by_key(|(_, &v)| v)
                .filter(|(_, &v)| total >= 64 && v as f64 > self.cfg.hot_ratio * mean)
                .map(|(d, _)| d);
            watch.elements = snap.elements;
            watch.at = Instant::now();
        }
        watch.hot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecfrm_codes::RsCode;
    use ecfrm_core::{LayoutKind, Scheme};

    fn front_with(cfg: FrontConfig) -> Arc<FrontDoor> {
        let scheme = Scheme::builder(Arc::new(RsCode::vandermonde(4, 2)))
            .layout(LayoutKind::EcFrm)
            .build();
        FrontDoor::new(Arc::new(ObjectStore::new(scheme, 512)), cfg)
    }

    fn front() -> Arc<FrontDoor> {
        front_with(FrontConfig::builder().cache_bytes(1 << 20).build())
    }

    fn blob(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn namespace_crud_roundtrip() {
        let f = front();
        let data = blob(5000, 3);
        f.put("a", "obj", &data).unwrap();
        assert_eq!(f.read("a", "obj").unwrap(), data);
        let st = f.stat("a", "obj").unwrap();
        assert_eq!((st.len, st.version, st.extents), (5000, 2, 1));
        // Appends add extents; reads concatenate.
        let more = blob(700, 9);
        f.write("a", "obj", &more).unwrap();
        let mut all = data.clone();
        all.extend_from_slice(&more);
        assert_eq!(f.read("a", "obj").unwrap(), all);
        assert_eq!(f.stat("a", "obj").unwrap().extents, 2);
        // Ranged read across the extent boundary.
        assert_eq!(
            f.read_range("a", "obj", 4990, 20).unwrap(),
            &all[4990..5010]
        );
        // Delete frees the name.
        f.delete("a", "obj").unwrap();
        assert!(matches!(f.read("a", "obj"), Err(StoreError::NotFound(_))));
        f.put("a", "obj", b"fresh").unwrap();
        assert_eq!(f.read("a", "obj").unwrap(), b"fresh");
    }

    #[test]
    fn tenants_are_isolated() {
        let f = front();
        f.put("a", "obj", b"alpha").unwrap();
        f.put("b", "obj", b"bravo").unwrap();
        assert_eq!(f.read("a", "obj").unwrap(), b"alpha");
        assert_eq!(f.read("b", "obj").unwrap(), b"bravo");
        assert!(matches!(f.stat("c", "obj"), Err(StoreError::NotFound(_))));
        assert_eq!(f.list("a"), vec!["obj".to_string()]);
    }

    #[test]
    fn duplicate_create_rejected_and_errors_typed() {
        let f = front();
        f.create("a", "x").unwrap();
        assert!(matches!(
            f.create("a", "x"),
            Err(StoreError::AlreadyExists(_))
        ));
        assert!(matches!(
            f.write("a", "nope", b"z"),
            Err(StoreError::NotFound(_))
        ));
        f.write("a", "x", &blob(100, 1)).unwrap();
        assert!(matches!(
            f.read_range("a", "x", 90, 20),
            Err(StoreError::RangeOutOfBounds { .. })
        ));
    }

    #[test]
    fn cache_hits_on_hot_reread() {
        let f = front();
        let data = blob(8192, 5);
        f.put("a", "hot", &data).unwrap();
        for _ in 0..10 {
            assert_eq!(f.read("a", "hot").unwrap(), data);
        }
        let (hits, misses) = f.cache_stats();
        assert!(hits > misses, "hits {hits} misses {misses}");
        // The cached bytes really are what the store holds.
        assert_eq!(f.read("a", "hot").unwrap(), data);
    }

    #[test]
    fn cache_disabled_still_correct() {
        let f = front_with(FrontConfig::builder().cache_bytes(0).build());
        let data = blob(8192, 5);
        f.put("a", "o", &data).unwrap();
        assert_eq!(f.read("a", "o").unwrap(), data);
        let (hits, _) = f.cache_stats();
        assert_eq!(hits, 0);
    }

    #[test]
    fn cache_eviction_bounds_bytes() {
        // Cap of 4 elements' worth; read 16 elements.
        let f = front_with(FrontConfig::builder().cache_bytes(4 * 512).build());
        let data = blob(16 * 512, 7);
        f.put("a", "o", &data).unwrap();
        assert_eq!(f.read("a", "o").unwrap(), data);
        let snap = f.store().recorder().snapshot();
        let evicted = snap
            .flatten()
            .into_iter()
            .find(|(n, _)| n == "cache.evict")
            .map(|(_, v)| v)
            .unwrap_or(0);
        assert!(evicted >= 12, "evicted {evicted}");
        // Still byte-correct after churn.
        assert_eq!(f.read("a", "o").unwrap(), data);
    }

    #[test]
    fn latency_class_rejects_instead_of_queueing() {
        let f = front();
        f.register_tenant(TenantSpec::new("lat", QosClass::Latency).rate(1024));
        f.put("lat", "o", &blob(4096, 1)).unwrap(); // burst covers it
                                                    // Bucket now deeply overdrawn: the next charged op must reject
                                                    // immediately, not sleep.
        let t0 = Instant::now();
        let r = f.put("lat", "o2", &blob(4096, 2));
        assert!(matches!(r, Err(StoreError::Throttled(_))), "{r:?}");
        assert!(t0.elapsed() < Duration::from_millis(200));
    }

    #[test]
    fn bulk_class_queues_within_deadline() {
        let f = front_with(
            FrontConfig::builder()
                .cache_bytes(0)
                .max_delay(Duration::from_secs(5))
                .build(),
        );
        f.register_tenant(TenantSpec::new("bulk", QosClass::Bulk).rate(100_000));
        f.put("bulk", "o", &blob(20_000, 1)).unwrap(); // ~2× burst
                                                       // Overdrawn by ~10 KB → next op waits ~100 ms instead of
                                                       // rejecting.
        let t0 = Instant::now();
        f.put("bulk", "o2", b"x").unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(50),
            "{:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn repair_class_wait_is_finite() {
        // A deeply overdrawn repair bucket used to park the caller with
        // `Duration::MAX` as the deadline; now it rejects once the wait
        // exceeds the (finite) repair deadline.
        let f = front_with(
            FrontConfig::builder()
                .repair_max_delay(Duration::from_millis(100))
                .build(),
        );
        f.register_tenant(TenantSpec::new("rep", QosClass::Repair).rate(1024));
        f.put("rep", "o", &blob(4096, 1)).unwrap(); // ~4 s of deficit
        let t0 = Instant::now();
        let r = f.put("rep", "o2", b"x");
        assert!(matches!(r, Err(StoreError::Throttled(_))), "{r:?}");
        assert!(t0.elapsed() < Duration::from_secs(1), "{:?}", t0.elapsed());
    }

    #[test]
    fn shutdown_unparks_queued_waiters() {
        let f = front_with(
            FrontConfig::builder()
                .max_delay(Duration::from_secs(30))
                .build(),
        );
        f.register_tenant(TenantSpec::new("bulk", QosClass::Bulk).rate(1024));
        f.put("bulk", "o", &blob(4096, 1)).unwrap(); // ~4 s of deficit
        let waiter = {
            let f = Arc::clone(&f);
            std::thread::spawn(move || f.put("bulk", "o2", b"x"))
        };
        std::thread::sleep(Duration::from_millis(50)); // let it park
        f.shutdown();
        let t0 = Instant::now();
        let r = waiter.join().unwrap();
        assert!(matches!(r, Err(StoreError::Throttled(_))), "{r:?}");
        assert!(t0.elapsed() < Duration::from_secs(1), "{:?}", t0.elapsed());
    }

    #[test]
    fn invalid_requests_spend_no_budget() {
        let f = front_with(
            FrontConfig::builder()
                .max_delay(Duration::from_millis(200))
                .build(),
        );
        f.register_tenant(TenantSpec::new("t", QosClass::Bulk).rate(100_000));
        f.put("t", "o", &blob(100, 1)).unwrap();
        // A storm of invalid traffic: were any of it charged, the
        // deficit would dwarf the 200 ms bulk deadline and every later
        // request would throttle.
        for _ in 0..5 {
            assert!(matches!(
                f.read_range("t", "missing", 0, 10_000_000),
                Err(StoreError::NotFound(_))
            ));
            assert!(matches!(
                f.read_range("t", "o", 0, 10_000_000),
                Err(StoreError::RangeOutOfBounds { .. })
            ));
            assert!(matches!(
                f.write("t", "missing", &blob(10_000_000, 2)),
                Err(StoreError::NotFound(_))
            ));
            assert!(matches!(
                f.create("t", "o"),
                Err(StoreError::AlreadyExists(_))
            ));
        }
        assert_eq!(f.read("t", "o").unwrap(), blob(100, 1));
    }

    #[test]
    fn admission_off_never_throttles() {
        let f = front_with(FrontConfig::builder().admission(false).build());
        f.register_tenant(TenantSpec::new("t", QosClass::Latency).rate(1));
        for i in 0..5 {
            f.put("t", &format!("o{i}"), &blob(4096, i as u8)).unwrap();
        }
    }

    #[test]
    fn tenant_counters_register() {
        let f = front();
        f.put("acct", "o", &blob(2000, 1)).unwrap();
        f.read("acct", "o").unwrap();
        let snap = f.store().recorder().snapshot();
        let get = |name: &str| {
            snap.flatten()
                .into_iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v)
                .unwrap_or(0)
        };
        assert_eq!(get("tenant.acct.writes"), 1);
        assert_eq!(get("tenant.acct.write_bytes"), 2000);
        assert_eq!(get("tenant.acct.reads"), 1);
        assert_eq!(get("tenant.acct.read_bytes"), 2000);
    }

    #[test]
    fn tenant_spec_parsing() {
        let s = TenantSpec::parse("web:latency").unwrap();
        assert_eq!(
            (s.name.as_str(), s.class, s.rate_limit),
            ("web", QosClass::Latency, None)
        );
        let s = TenantSpec::parse("scan:bulk:8000000").unwrap();
        assert_eq!(s.rate_limit, Some(8_000_000));
        assert!(TenantSpec::parse("scan").is_err());
        assert!(TenantSpec::parse("scan:fast").is_err());
        assert!(TenantSpec::parse("scan:bulk:zap").is_err());
        assert!(TenantSpec::parse("scan:bulk:1:2").is_err());
    }

    #[test]
    fn extent_record_slices() {
        let rec = ExtentRecord {
            extents: vec![
                ObjectMeta {
                    offset: 100,
                    len: 10,
                },
                ObjectMeta {
                    offset: 500,
                    len: 20,
                },
            ],
            version: 3,
        };
        assert_eq!(rec.len(), 30);
        // Range straddling both extents.
        assert_eq!(
            rec.slices(5, 10),
            vec![
                (
                    ObjectMeta {
                        offset: 100,
                        len: 10
                    },
                    5,
                    5
                ),
                (
                    ObjectMeta {
                        offset: 500,
                        len: 20
                    },
                    0,
                    5
                ),
            ]
        );
        assert_eq!(rec.slices(10, 0), vec![]);
    }
}

//! Background repair: rate-limited parallel reconstruction of lost
//! disks while foreground reads keep flowing.
//!
//! [`ObjectStore::recover_disk`](crate::ObjectStore::recover_disk) is a
//! blocking one-shot call; production clusters repair *online*. This
//! module turns crash recovery into a subsystem:
//!
//! * **Detection** — a detector thread watches the array's suspect set
//!   (fed by dead workers and by reads that hit unresponsive disks),
//!   probes each suspect, and either clears it (the disk answered — a
//!   transient) or promotes it to *lost* and starts reconstruction. Disks
//!   already marked failed on the store are adopted the same way.
//! * **Queueing** — every sealed stripe of a lost disk becomes one unit
//!   of repair work in a [`RepairQueue`]: deduplicated, resumable, with
//!   two priorities — stripes that degraded foreground reads actually
//!   touched jump the queue, so hot data regains redundancy first.
//! * **Reconstruction** — a small worker pool drains the queue. Each
//!   stripe repairs through the store's batched read path (one vectored
//!   request per source disk, coalescible into `GetRange` on remote
//!   shards) and the SIMD decode kernels, then writes the rebuilt
//!   elements back.
//! * **Backpressure** — a token-bucket rate limiter bounds repair
//!   traffic (bytes/second of source reads + rebuilt writes) so
//!   foreground reads keep a bounded p99 while repair proceeds; leave it
//!   unset to rebuild at full speed.
//! * **Completion** — when every stripe of a disk is rebuilt the disk is
//!   healed, the planner stops planning around it, and the
//!   time-to-full-redundancy lands in the metrics registry.
//!
//! ```
//! use std::sync::Arc;
//! use ecfrm_codes::RsCode;
//! use ecfrm_core::Scheme;
//! use ecfrm_store::{ObjectStore, RepairConfig, RepairManager};
//!
//! let store = Arc::new(ObjectStore::new(
//!     Scheme::builder(Arc::new(RsCode::vandermonde(6, 3)))
//!         .layout(ecfrm_core::LayoutKind::EcFrm)
//!         .build(),
//!     512,
//! ));
//! store.put("obj", &vec![7u8; 30_000]).unwrap();
//! store.flush();
//!
//! // Lose a disk for real, then let the background pipeline restore it.
//! store.fail_disk(2).unwrap();
//! store.array().disk(2).wipe();
//! let mgr = RepairManager::spawn(Arc::clone(&store), RepairConfig::default());
//! assert!(mgr.wait_idle(std::time::Duration::from_secs(10)));
//! assert!(store.stats().failed_disks.is_empty());
//! assert_eq!(store.get("obj").unwrap(), vec![7u8; 30_000]);
//! ```

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ecfrm_obs::{Counter, Gauge, Histogram, Recorder};
use ecfrm_sim::DiskBackend;
use ecfrm_util::{Mutex, TokenBucket};

use crate::store::ObjectStore;

/// One unit of repair work: `(disk, stripe)`.
pub type RepairKey = (usize, u64);

/// Attempts per stripe before the queue gives up on it (each failure
/// requeues at normal priority, so transient source outages retry).
const MAX_ATTEMPTS: u32 = 5;

/// The deduplicated, two-priority, resumable stripe queue.
///
/// The store owns the queue (so degraded reads can drop priority hints
/// into it with no manager attached — they are no-ops until a
/// [`RepairManager`] enables it), and the manager drains it. Completed
/// stripes are remembered until their disk's repair finishes, which is
/// what makes pausing/resuming — or replacing the manager mid-repair —
/// safe: no stripe is rebuilt twice.
#[derive(Debug, Default)]
pub struct RepairQueue {
    enabled: AtomicBool,
    inner: Mutex<QueueState>,
}

#[derive(Debug, Default)]
struct QueueState {
    /// Breadcrumbs from degraded reads: stripes the foreground actually
    /// touched with a disk down. Not yet repair work — the detector
    /// drains them to the front of the queue when (and only when) it
    /// promotes the disk to lost, so a suspicion the foreground
    /// withdraws on its own never causes repair traffic.
    hints: HashSet<RepairKey>,
    /// Stripes degraded foreground reads touched — repaired first.
    high: VecDeque<RepairKey>,
    /// Everything else, in stripe order.
    normal: VecDeque<RepairKey>,
    /// Keys currently in a deque or being repaired (dedup set).
    queued: HashSet<RepairKey>,
    /// Keys repaired during the current generation of their disk.
    done: HashSet<RepairKey>,
    /// Keys abandoned after [`MAX_ATTEMPTS`] failures.
    abandoned: HashSet<RepairKey>,
    attempts: HashMap<RepairKey, u32>,
}

impl RepairQueue {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Hints are ignored until a manager attaches, so a store without
    /// background repair never accumulates queue state.
    pub(crate) fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Record that a degraded read touched `stripe` with `disk` down —
    /// a priority hint: if the disk turns out to be lost, that stripe
    /// repairs before cold ones.
    pub fn hint(&self, disk: usize, stripe: u64) {
        if !self.enabled.load(Ordering::Acquire) {
            return;
        }
        let key = (disk, stripe);
        let mut q = self.inner.lock();
        if q.queued.contains(&key) || q.done.contains(&key) || q.abandoned.contains(&key) {
            return;
        }
        q.hints.insert(key);
    }

    /// Turn `disk`'s staged hints into front-of-queue repair work
    /// (called by the detector at promotion and on every tick while the
    /// disk is under repair, so hints from ongoing degraded reads keep
    /// jumping the queue).
    fn drain_hints(&self, disk: usize) {
        let mut q = self.inner.lock();
        let keys: Vec<RepairKey> = q
            .hints
            .iter()
            .filter(|(d, _)| *d == disk)
            .copied()
            .collect();
        for key in keys {
            q.hints.remove(&key);
            if q.queued.contains(&key) || q.done.contains(&key) || q.abandoned.contains(&key) {
                continue;
            }
            q.queued.insert(key);
            q.high.push_back(key);
        }
    }

    /// Drop staged hints for every disk *not* in `keep` — garbage
    /// collection for suspicions the foreground withdrew on its own
    /// (the disk answered again before the detector probed it).
    fn retain_hint_disks(&self, keep: &BTreeSet<usize>) {
        self.inner.lock().hints.retain(|(d, _)| keep.contains(d));
    }

    /// Staged hints not yet promoted into repair work.
    pub fn hint_count(&self) -> usize {
        self.inner.lock().hints.len()
    }

    /// Enqueue a stripe at normal priority (no-op if already queued,
    /// done, or abandoned).
    fn enqueue(&self, disk: usize, stripe: u64) {
        let key = (disk, stripe);
        let mut q = self.inner.lock();
        if q.queued.contains(&key) || q.done.contains(&key) || q.abandoned.contains(&key) {
            return;
        }
        q.queued.insert(key);
        q.normal.push_back(key);
    }

    /// Next stripe to repair: priority hints first. The key stays in the
    /// dedup set while in flight.
    fn pop(&self) -> Option<RepairKey> {
        let mut q = self.inner.lock();
        q.high.pop_front().or_else(|| q.normal.pop_front())
    }

    /// Mark a stripe rebuilt.
    fn complete(&self, key: RepairKey) {
        let mut q = self.inner.lock();
        q.queued.remove(&key);
        q.attempts.remove(&key);
        q.done.insert(key);
    }

    /// Record a failed attempt; requeues unless the stripe is out of
    /// attempts, in which case it is abandoned (and its disk can never
    /// finish repairing until [`Self::reset_disk`]).
    fn fail_attempt(&self, key: RepairKey) {
        let mut q = self.inner.lock();
        let attempts = q.attempts.entry(key).or_insert(0);
        *attempts += 1;
        if *attempts >= MAX_ATTEMPTS {
            q.attempts.remove(&key);
            q.queued.remove(&key);
            q.abandoned.insert(key);
        } else {
            q.normal.push_back(key);
        }
    }

    /// Outstanding keys for `disk` (queued or in flight).
    fn pending_for(&self, disk: usize) -> usize {
        self.inner
            .lock()
            .queued
            .iter()
            .filter(|(d, _)| *d == disk)
            .count()
    }

    /// Abandoned keys for `disk`.
    fn abandoned_for(&self, disk: usize) -> usize {
        self.inner
            .lock()
            .abandoned
            .iter()
            .filter(|(d, _)| *d == disk)
            .count()
    }

    /// Stripes completed for `disk` this generation.
    pub fn done_for(&self, disk: usize) -> usize {
        self.inner
            .lock()
            .done
            .iter()
            .filter(|(d, _)| *d == disk)
            .count()
    }

    /// Forget everything about `disk` — called when its repair finishes
    /// (a later failure of the same disk starts a fresh generation) or
    /// when a suspicion is withdrawn before repair started.
    fn reset_disk(&self, disk: usize) {
        let mut q = self.inner.lock();
        q.hints.retain(|(d, _)| *d != disk);
        q.high.retain(|(d, _)| *d != disk);
        q.normal.retain(|(d, _)| *d != disk);
        q.queued.retain(|(d, _)| *d != disk);
        q.done.retain(|(d, _)| *d != disk);
        q.abandoned.retain(|(d, _)| *d != disk);
        q.attempts.retain(|(d, _), _| *d != disk);
    }

    /// Keys waiting or in flight.
    pub fn depth(&self) -> usize {
        self.inner.lock().queued.len()
    }
}

/// Factory for replacement backends: given a lost disk's index, supply
/// the empty disk to re-register in its slot (see
/// [`ecfrm_sim::ThreadedArray::replace_disk`]).
pub type Replacer = Arc<dyn Fn(usize) -> Arc<dyn DiskBackend> + Send + Sync>;

/// Tuning for a [`RepairManager`].
#[derive(Clone)]
pub struct RepairConfig {
    /// Concurrent stripe-repair workers. More workers rebuild faster but
    /// press harder on the surviving disks. Default 2.
    pub workers: usize,
    /// Token-bucket rate limit on repair traffic, in bytes/second of
    /// source reads + rebuilt writes. `None` repairs at full speed.
    pub rate_limit: Option<u64>,
    /// Detector poll / idle-worker sleep interval. Default 2 ms.
    pub poll: Duration,
    /// How to obtain a replacement backend for a disk whose node is
    /// gone (killed or crashed — reads `None`, writes dropped). `None`
    /// repairs in place onto the existing backend, which is right for
    /// transient `fail()`-style failures and wiped-but-usable disks.
    pub replacer: Option<Replacer>,
}

impl Default for RepairConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            rate_limit: None,
            poll: Duration::from_millis(2),
            replacer: None,
        }
    }
}

impl std::fmt::Debug for RepairConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RepairConfig")
            .field("workers", &self.workers)
            .field("rate_limit", &self.rate_limit)
            .field("poll", &self.poll)
            .field("replacer", &self.replacer.as_ref().map(|_| "fn"))
            .finish()
    }
}

/// Live repair state for one lost disk.
#[derive(Debug, Clone)]
struct ActiveRepair {
    /// When the loss was detected (time-to-full-redundancy starts here).
    since: Instant,
    /// Stripes `0..enqueued_to` have been enqueued; stripes sealed after
    /// promotion are picked up at finalization.
    enqueued_to: u64,
}

/// Pre-resolved repair instruments (registered on the store's
/// [`Recorder`], so one snapshot shows foreground and repair together).
struct RepairMetrics {
    stripes_done: Counter,
    bytes: Counter,
    read_bytes: Counter,
    queue_depth: Gauge,
    active_disks: Gauge,
    repair_us: Histogram,
    redundancy_ms: Gauge,
    disks_restored: Counter,
    abandoned_stripes: Counter,
}

impl RepairMetrics {
    fn new(recorder: &Recorder) -> Self {
        Self {
            stripes_done: recorder.counter("repair.stripes_done"),
            bytes: recorder.counter("repair.bytes"),
            read_bytes: recorder.counter("repair.read_bytes"),
            queue_depth: recorder.gauge("repair.queue_depth"),
            active_disks: recorder.gauge("repair.active_disks"),
            repair_us: recorder.histogram("repair_us"),
            redundancy_ms: recorder.gauge("repair.time_to_redundancy_ms"),
            disks_restored: recorder.counter("repair.disks_restored"),
            abandoned_stripes: recorder.counter("repair.abandoned_stripes"),
        }
    }
}

/// A point-in-time view of the repair pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairProgress {
    /// Stripes rebuilt since the manager started.
    pub stripes_done: u64,
    /// Rebuilt bytes written back.
    pub bytes: u64,
    /// Stripes queued or in flight.
    pub queue_depth: usize,
    /// Disks currently under reconstruction.
    pub active_disks: Vec<usize>,
    /// Disks fully restored since the manager started.
    pub disks_restored: u64,
    /// Whether the pipeline is paused.
    pub paused: bool,
}

struct Shared {
    store: Arc<ObjectStore>,
    cfg: RepairConfig,
    stop: AtomicBool,
    paused: AtomicBool,
    bucket: Option<TokenBucket>,
    metrics: RepairMetrics,
    active: Mutex<BTreeMap<usize, ActiveRepair>>,
    /// Disks whose repair ran out of attempts: left failed, not
    /// re-promoted until an operator heals or replaces them (otherwise
    /// the detector would promote-abandon-promote forever).
    given_up: Mutex<BTreeSet<usize>>,
}

/// The background repair subsystem: detector + worker pool over an
/// [`ObjectStore`] (see the [module docs](self) for the pipeline).
///
/// Dropping the manager stops and joins every thread; in-flight stripe
/// repairs finish, queued ones stay in the store's [`RepairQueue`] and
/// resume if a new manager attaches.
pub struct RepairManager {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for RepairManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RepairManager({} threads)", self.threads.len())
    }
}

impl RepairManager {
    /// Start the detector and `cfg.workers` repair workers over `store`.
    pub fn spawn(store: Arc<ObjectStore>, cfg: RepairConfig) -> Self {
        store.repair_queue().enable();
        let metrics = RepairMetrics::new(store.recorder());
        let shared = Arc::new(Shared {
            bucket: cfg.rate_limit.map(TokenBucket::new),
            store,
            cfg,
            stop: AtomicBool::new(false),
            paused: AtomicBool::new(false),
            metrics,
            active: Mutex::new(BTreeMap::new()),
            given_up: Mutex::new(BTreeSet::new()),
        });
        let mut threads = Vec::with_capacity(shared.cfg.workers + 1);
        {
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("repair-detector".into())
                    .spawn(move || detector_loop(&sh))
                    .expect("spawn repair detector"),
            );
        }
        for w in 0..shared.cfg.workers.max(1) {
            let sh = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("repair-worker-{w}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn repair worker"),
            );
        }
        Self { shared, threads }
    }

    /// Stop picking up new stripes (in-flight ones finish). Progress is
    /// kept; [`Self::resume`] continues where repair left off.
    pub fn pause(&self) {
        self.shared.paused.store(true, Ordering::Release);
    }

    /// Resume after [`Self::pause`].
    pub fn resume(&self) {
        self.shared.paused.store(false, Ordering::Release);
    }

    /// Current pipeline state.
    pub fn progress(&self) -> RepairProgress {
        let m = &self.shared.metrics;
        RepairProgress {
            stripes_done: m.stripes_done.get(),
            bytes: m.bytes.get(),
            queue_depth: self.shared.store.repair_queue().depth(),
            active_disks: self.shared.active.lock().keys().copied().collect(),
            disks_restored: m.disks_restored.get(),
            paused: self.shared.paused.load(Ordering::Acquire),
        }
    }

    /// Block until the pipeline is idle — no active repair, an empty
    /// queue, no unprobed suspects, and every failed disk either
    /// restored or given up on — or `timeout` elapses. Returns whether
    /// the pipeline went idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let failed = self.shared.store.stats().failed_disks;
            let pending_failed = {
                let given_up = self.shared.given_up.lock();
                failed.iter().any(|d| !given_up.contains(d))
            };
            let idle = !pending_failed
                && self.shared.active.lock().is_empty()
                && self.shared.store.repair_queue().depth() == 0
                && self.shared.store.array().suspects().is_empty();
            if idle {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(self.shared.cfg.poll);
        }
    }

    /// Stop and join every thread. (Also happens on drop.)
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for RepairManager {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Promote a lost disk: re-register a replacement (when configured),
/// mark it failed so the planner avoids it, and enqueue every sealed
/// stripe.
fn promote(sh: &Shared, disk: usize, stripes: u64) {
    if let Some(replacer) = &sh.cfg.replacer {
        let fresh = replacer(disk);
        sh.store.array().replace_disk(disk, fresh);
    }
    let _ = sh.store.fail_disk(disk);
    sh.store.array().clear_suspect(disk);
    let queue = sh.store.repair_queue();
    // Hot stripes (hinted by degraded reads) jump the queue; the full
    // sweep fills in behind them.
    queue.drain_hints(disk);
    for s in 0..stripes {
        queue.enqueue(disk, s);
    }
    sh.active.lock().insert(
        disk,
        ActiveRepair {
            since: Instant::now(),
            enqueued_to: stripes,
        },
    );
    sh.metrics.active_disks.set(sh.active.lock().len() as i64);
}

fn detector_loop(sh: &Shared) {
    let store = &sh.store;
    let queue = store.repair_queue();
    while !sh.stop.load(Ordering::Acquire) {
        std::thread::sleep(sh.cfg.poll);
        if sh.paused.load(Ordering::Acquire) {
            continue;
        }
        let stats = store.stats();
        let failed: BTreeSet<usize> = stats.failed_disks.iter().copied().collect();

        // 1. Probe suspects: answering disks are cleared (and any
        //    priority hints for them dropped — no double repair);
        //    silent ones are promoted to lost.
        for d in store.array().suspects() {
            if sh.stop.load(Ordering::Acquire) {
                return;
            }
            if failed.contains(&d) || sh.active.lock().contains_key(&d) {
                continue;
            }
            if stats.stripes == 0 {
                continue; // nothing sealed: nothing to probe against or repair
            }
            // Every disk stores offset 0 once a stripe is sealed. The
            // probe verifies the cell's checksum footer, so a disk that
            // answers with *corrupt* bytes (silent corruption, not
            // silence) is promoted instead of vouched for — without
            // this, a lying disk would cycle suspect → cleared forever.
            if store.probe_disk(d) {
                store.array().clear_suspect(d);
                queue.reset_disk(d);
            } else {
                promote(sh, d, stats.stripes);
            }
        }

        // 2. Adopt disks already marked failed on the store (e.g. via
        //    `fail_disk` from an operator or a fault drill) — unless a
        //    previous repair of that disk already ran out of attempts.
        sh.given_up.lock().retain(|d| failed.contains(d));
        for &d in &failed {
            if !sh.active.lock().contains_key(&d) && !sh.given_up.lock().contains(&d) {
                promote(sh, d, stats.stripes);
            }
        }

        // Hints from degraded reads that landed since promotion keep
        // jumping the queue while their disk is under repair.
        let active_disks: Vec<usize> = sh.active.lock().keys().copied().collect();
        for &d in &active_disks {
            queue.drain_hints(d);
        }
        // Garbage-collect hints for disks the foreground vouched for
        // again before we ever probed them.
        let keep: BTreeSet<usize> = failed
            .iter()
            .copied()
            .chain(active_disks.iter().copied())
            .chain(store.array().suspects())
            .collect();
        queue.retain_hint_disks(&keep);

        // 3. Finalize finished repairs: enqueue stripes sealed since
        //    promotion, then heal and record time-to-full-redundancy.
        let active_now: Vec<(usize, ActiveRepair)> = sh
            .active
            .lock()
            .iter()
            .map(|(d, a)| (*d, a.clone()))
            .collect();
        for (d, info) in active_now {
            if queue.pending_for(d) > 0 {
                continue;
            }
            if queue.abandoned_for(d) > 0 {
                // Out of attempts (e.g. too many concurrent failures):
                // give up on this disk for now; it stays failed and a
                // fresh generation can retry after `reset_disk`.
                sh.metrics
                    .abandoned_stripes
                    .add(queue.abandoned_for(d) as u64);
                queue.reset_disk(d);
                sh.given_up.lock().insert(d);
                sh.active.lock().remove(&d);
                sh.metrics.active_disks.set(sh.active.lock().len() as i64);
                continue;
            }
            let sealed_now = store.stats().stripes;
            if sealed_now > info.enqueued_to {
                for s in info.enqueued_to..sealed_now {
                    queue.enqueue(d, s);
                }
                if let Some(a) = sh.active.lock().get_mut(&d) {
                    a.enqueued_to = sealed_now;
                }
                continue;
            }
            let _ = store.heal_disk(d);
            store.array().clear_suspect(d);
            queue.reset_disk(d);
            sh.active.lock().remove(&d);
            sh.metrics.active_disks.set(sh.active.lock().len() as i64);
            sh.metrics
                .redundancy_ms
                .set(info.since.elapsed().as_millis() as i64);
            sh.metrics.disks_restored.inc();
        }
        sh.metrics.queue_depth.set(queue.depth() as i64);
    }
}

fn worker_loop(sh: &Shared) {
    let store = &sh.store;
    let queue = store.repair_queue();
    while !sh.stop.load(Ordering::Acquire) {
        if sh.paused.load(Ordering::Acquire) {
            std::thread::sleep(sh.cfg.poll);
            continue;
        }
        let Some(key) = queue.pop() else {
            std::thread::sleep(sh.cfg.poll);
            continue;
        };
        if let Some(bucket) = &sh.bucket {
            bucket.wait_ready(&sh.stop, sh.cfg.poll);
            if sh.stop.load(Ordering::Acquire) {
                // Put the key back for the next manager generation.
                queue.fail_attempt(key);
                return;
            }
        }
        let (disk, stripe) = key;
        let t0 = Instant::now();
        match store.repair_stripe(disk, stripe) {
            Ok(r) => {
                if let Some(bucket) = &sh.bucket {
                    bucket.spend(r.bytes_read + r.bytes_written);
                }
                queue.complete(key);
                sh.metrics.stripes_done.inc();
                sh.metrics.bytes.add(r.bytes_written);
                sh.metrics.read_bytes.add(r.bytes_read);
                sh.metrics.repair_us.record_duration(t0.elapsed());
            }
            Err(_) => {
                queue.fail_attempt(key);
                std::thread::sleep(sh.cfg.poll);
            }
        }
        sh.metrics.queue_depth.set(queue.depth() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_dedups_and_prioritises_hints() {
        let q = RepairQueue::new();
        q.enable();
        q.hint(0, 7); // hot stripe, staged
        q.hint(0, 7); // duplicate hint is a no-op
        assert_eq!(q.hint_count(), 1);
        assert_eq!(q.depth(), 0, "hints are not repair work yet");
        // Promotion: hints jump ahead of the full sweep.
        q.drain_hints(0);
        q.enqueue(0, 5);
        q.enqueue(0, 6);
        q.enqueue(0, 7); // already queued high: no-op
        assert_eq!(q.depth(), 3);
        assert_eq!(q.pop(), Some((0, 7)));
        assert_eq!(q.pop(), Some((0, 5)));
        q.complete((0, 7));
        q.hint(0, 7); // done this generation: not re-staged
        assert_eq!(q.hint_count(), 0);
        assert_eq!(q.pop(), Some((0, 6)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.done_for(0), 1);
    }

    #[test]
    fn queue_hints_are_noops_until_enabled() {
        let q = RepairQueue::new();
        q.hint(1, 3);
        assert_eq!(q.hint_count(), 0);
        q.enable();
        q.hint(1, 3);
        assert_eq!(q.hint_count(), 1);
    }

    #[test]
    fn queue_gc_drops_hints_for_recovered_disks() {
        let q = RepairQueue::new();
        q.enable();
        q.hint(1, 0);
        q.hint(2, 0);
        q.retain_hint_disks(&BTreeSet::from([2]));
        assert_eq!(q.hint_count(), 1, "disk 1 recovered: its hints drop");
        q.drain_hints(2);
        assert_eq!(q.pop(), Some((2, 0)));
    }

    #[test]
    fn queue_reset_disk_clears_generation() {
        let q = RepairQueue::new();
        q.enable();
        q.enqueue(2, 0);
        q.enqueue(2, 1);
        q.hint(2, 1);
        q.enqueue(3, 0);
        let k = q.pop().unwrap();
        q.complete(k);
        q.reset_disk(2);
        assert_eq!(q.done_for(2), 0);
        assert_eq!(q.pending_for(2), 0);
        assert_eq!(q.hint_count(), 0);
        assert_eq!(q.pending_for(3), 1, "other disks untouched");
        // A fresh generation may re-repair the same stripe.
        q.enqueue(2, 0);
        assert_eq!(q.pending_for(2), 1);
    }

    #[test]
    fn queue_abandons_after_max_attempts() {
        let q = RepairQueue::new();
        q.enable();
        q.enqueue(0, 9);
        for _ in 0..MAX_ATTEMPTS {
            let k = q.pop().unwrap();
            q.fail_attempt(k);
        }
        assert_eq!(q.pop(), None);
        assert_eq!(q.abandoned_for(0), 1);
        assert_eq!(q.pending_for(0), 0);
    }
}

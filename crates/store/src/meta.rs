//! Object catalog entries and store statistics.

use ecfrm_sim::NetStats;

/// Catalog entry: where an object lives in the logical byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectMeta {
    /// Byte offset in the append-only logical stream.
    pub offset: u64,
    /// Object length in bytes.
    pub len: u64,
}

impl ObjectMeta {
    /// Inclusive first and exclusive last *data element* the object
    /// spans, for `element_size`-byte elements.
    pub fn element_range(&self, element_size: usize) -> (u64, u64) {
        let es = element_size as u64;
        let first = self.offset / es;
        let last = (self.offset + self.len).div_ceil(es);
        (first, last.max(first))
    }
}

/// Per-read instrumentation returned by
/// [`ObjectStore::get_with_stats`](crate::ObjectStore::get_with_stats).
#[derive(Debug, Clone, PartialEq)]
pub struct ReadStats {
    /// Data elements the request spanned.
    pub requested_elements: usize,
    /// Elements physically fetched (demand + repair).
    pub fetched_elements: usize,
    /// Elements fetched only for reconstruction.
    pub repair_elements: usize,
    /// Elements served by the most-loaded disk.
    pub max_disk_load: usize,
    /// Degraded-read cost (fetched / requested).
    pub cost: f64,
    /// Whether the read was planned around failed disks.
    pub degraded: bool,
    /// Times the read re-planned after a disk stopped answering
    /// mid-read (normal plan → degraded plan fallback).
    pub replans: usize,
    /// Network transport activity during this read (all-zero when every
    /// backend is local).
    pub net: NetStats,
    /// Wall-clock time of the parallel fetch + reconstruction.
    pub elapsed: std::time::Duration,
}

/// Outcome of rebuilding one stripe of one disk
/// ([`ObjectStore::repair_stripe`](crate::ObjectStore::repair_stripe)) —
/// the unit of work of the background repair pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StripeRepair {
    /// Elements rebuilt and written back.
    pub elements: usize,
    /// Source bytes fetched from surviving disks.
    pub bytes_read: u64,
    /// Rebuilt bytes written to the target disk.
    pub bytes_written: u64,
}

/// Outcome of a parity scrub ([`ObjectStore::scrub`](crate::ObjectStore::scrub)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubReport {
    /// Stripes examined.
    pub stripes_checked: u64,
    /// Groups whose recomputed parity disagreed with storage, as
    /// `(stripe, group)` pairs.
    pub corrupt_groups: Vec<(u64, usize)>,
    /// Elements that could not be read at all.
    pub missing_elements: usize,
}

impl ScrubReport {
    /// True when no corruption or missing element was found.
    pub fn is_clean(&self) -> bool {
        self.corrupt_groups.is_empty() && self.missing_elements == 0
    }
}

/// A snapshot of store occupancy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of catalogued objects.
    pub objects: usize,
    /// Logical bytes appended (including per-object data only).
    pub logical_bytes: u64,
    /// Data elements sealed into stripes so far.
    pub sealed_elements: u64,
    /// Full stripes written.
    pub stripes: u64,
    /// Bytes sitting in the unsealed write buffer.
    pub pending_bytes: usize,
    /// Currently failed disks.
    pub failed_disks: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_range_basics() {
        let m = ObjectMeta { offset: 0, len: 10 };
        assert_eq!(m.element_range(4), (0, 3)); // bytes 0..10 -> elems 0,1,2
        let m = ObjectMeta { offset: 4, len: 4 };
        assert_eq!(m.element_range(4), (1, 2));
        let m = ObjectMeta { offset: 5, len: 2 };
        assert_eq!(m.element_range(4), (1, 2));
        let m = ObjectMeta { offset: 5, len: 6 };
        assert_eq!(m.element_range(4), (1, 3));
    }

    #[test]
    fn scrub_report_cleanliness() {
        let clean = ScrubReport {
            stripes_checked: 4,
            corrupt_groups: vec![],
            missing_elements: 0,
        };
        assert!(clean.is_clean());
        let dirty = ScrubReport {
            stripes_checked: 4,
            corrupt_groups: vec![(1, 2)],
            missing_elements: 0,
        };
        assert!(!dirty.is_clean());
    }

    #[test]
    fn empty_object_spans_nothing() {
        let m = ObjectMeta { offset: 8, len: 0 };
        let (a, b) = m.element_range(4);
        assert!(
            b <= a + 1,
            "empty object should span at most its start element"
        );
    }
}

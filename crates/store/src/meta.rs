//! Object catalog entries, stripe integrity manifests, and store
//! statistics.

use ecfrm_integrity::{leaf_hash, HashKey, MerkleStep, MerkleTree};
use ecfrm_sim::NetStats;

/// Catalog entry: where an object lives in the logical byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectMeta {
    /// Byte offset in the append-only logical stream.
    pub offset: u64,
    /// Object length in bytes.
    pub len: u64,
}

impl ObjectMeta {
    /// Inclusive first and exclusive last *data element* the object
    /// spans, for `element_size`-byte elements.
    pub fn element_range(&self, element_size: usize) -> (u64, u64) {
        let es = element_size as u64;
        let first = self.offset / es;
        let last = (self.offset + self.len).div_ceil(es);
        (first, last.max(first))
    }
}

/// A named object's extent map — the front door's namespace record,
/// kept next to the [`StripeManifest`]s as the store's per-object
/// metadata (scfs-style: an object is an ordered list of extents over
/// the append-only stream, so appends never rewrite data in place).
///
/// Each write to an object appends one [`ObjectMeta`] extent (a stream
/// location returned by
/// [`ObjectStore::append`](crate::ObjectStore::append)); a read
/// concatenates the extents in order. Deleting an object drops the
/// record — the underlying stream bytes are unreferenced garbage until
/// a future compaction pass, exactly like a real append-only store.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExtentRecord {
    /// Stream extents in append order; the object's bytes are their
    /// concatenation.
    pub extents: Vec<ObjectMeta>,
    /// Bumped on every mutation (create = 1), so cached stats can be
    /// recognized as stale.
    pub version: u64,
}

impl ExtentRecord {
    /// Total object length in bytes.
    pub fn len(&self) -> u64 {
        self.extents.iter().map(|e| e.len).sum()
    }

    /// Whether the object holds no bytes yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Map the object-relative byte range `start .. start + len` to
    /// `(extent, offset_within_extent, run_len)` pieces in read order.
    /// Pieces never cross extent boundaries.
    pub fn slices(&self, start: u64, len: u64) -> Vec<(ObjectMeta, u64, u64)> {
        let mut out = Vec::new();
        let (mut pos, end) = (0u64, start + len);
        for e in &self.extents {
            let (a, b) = (pos.max(start), (pos + e.len).min(end));
            if a < b {
                out.push((*e, a - pos, b - a));
            }
            pos += e.len;
            if pos >= end {
                break;
            }
        }
        out
    }
}

/// What [`FrontDoor::stat`](crate::front::FrontDoor::stat) reports for
/// a named object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectStat {
    /// Object length in bytes (sum over extents).
    pub len: u64,
    /// Mutation version (create = 1, +1 per write).
    pub version: u64,
    /// Number of stream extents backing the object.
    pub extents: usize,
}

/// Per-read instrumentation returned by
/// [`ObjectStore::get_with_stats`](crate::ObjectStore::get_with_stats).
#[derive(Debug, Clone, PartialEq)]
pub struct ReadStats {
    /// Data elements the request spanned.
    pub requested_elements: usize,
    /// Elements physically fetched (demand + repair).
    pub fetched_elements: usize,
    /// Elements fetched only for reconstruction.
    pub repair_elements: usize,
    /// Elements served by the most-loaded disk.
    pub max_disk_load: usize,
    /// Degraded-read cost (fetched / requested).
    pub cost: f64,
    /// Whether the read was planned around failed disks.
    pub degraded: bool,
    /// Times the read re-planned after a disk stopped answering
    /// mid-read (normal plan → degraded plan fallback).
    pub replans: usize,
    /// Network transport activity during this read (all-zero when every
    /// backend is local).
    pub net: NetStats,
    /// Wall-clock time of the parallel fetch + reconstruction.
    pub elapsed: std::time::Duration,
}

/// Outcome of rebuilding one stripe of one disk
/// ([`ObjectStore::repair_stripe`](crate::ObjectStore::repair_stripe)) —
/// the unit of work of the background repair pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StripeRepair {
    /// Elements rebuilt and written back.
    pub elements: usize,
    /// Source bytes fetched from surviving disks.
    pub bytes_read: u64,
    /// Rebuilt bytes written to the target disk.
    pub bytes_written: u64,
}

/// The integrity manifest of one sealed stripe: a merkle tree over the
/// stripe's element payloads in layout order (row by row, data then
/// parity within each row).
///
/// The 128-bit [`root`](Self::root) is the stripe's identity. A scrub
/// — or any reader holding nothing but the root — can check a single
/// element in O(log n) hashes via [`verify_element`](Self::verify_element),
/// and a mismatch localizes to that exact element without decoding the
/// stripe or touching its siblings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeManifest {
    tree: MerkleTree,
}

impl StripeManifest {
    /// Wrap a built merkle tree (leaves must be in layout order).
    pub fn new(tree: MerkleTree) -> Self {
        StripeManifest { tree }
    }

    /// The stripe's merkle root.
    pub fn root(&self) -> u128 {
        self.tree.root()
    }

    /// Number of elements (leaves) the manifest covers.
    pub fn n_elements(&self) -> usize {
        self.tree.n_leaves()
    }

    /// The O(log n) inclusion proof for the element at `index`.
    pub fn proof(&self, index: usize) -> Vec<MerkleStep> {
        self.tree.proof(index)
    }

    /// Verify `payload` as the element at `index` against the root via
    /// its merkle path — O(log n) hashes, trusting only the root.
    pub fn verify_element(&self, key: &HashKey, index: usize, payload: &[u8]) -> bool {
        let leaf = leaf_hash(key, index as u64, payload);
        MerkleTree::verify(key, self.root(), leaf, &self.proof(index))
    }
}

/// Outcome of a scrub ([`ObjectStore::scrub`](crate::ObjectStore::scrub)
/// verifies merkle manifests;
/// [`ObjectStore::scrub_decode`](crate::ObjectStore::scrub_decode)
/// re-derives parity equations).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScrubReport {
    /// Stripes examined.
    pub stripes_checked: u64,
    /// Groups whose recomputed parity disagreed with storage, as
    /// `(stripe, group)` pairs. The merkle scrub derives the group from
    /// the offending element; the decode scrub cannot do better than
    /// this granularity.
    pub corrupt_groups: Vec<(u64, usize)>,
    /// Exact elements whose checksum or merkle path failed, as
    /// `(stripe, element index in layout order)` pairs. Only the merkle
    /// scrub can localize this precisely; the decode scrub leaves it
    /// empty.
    pub corrupt_elements: Vec<(u64, usize)>,
    /// Elements that could not be read at all.
    pub missing_elements: usize,
}

impl ScrubReport {
    /// True when no corruption or missing element was found.
    pub fn is_clean(&self) -> bool {
        self.corrupt_groups.is_empty()
            && self.corrupt_elements.is_empty()
            && self.missing_elements == 0
    }
}

/// A snapshot of store occupancy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of catalogued objects.
    pub objects: usize,
    /// Logical bytes appended (including per-object data only).
    pub logical_bytes: u64,
    /// Data elements sealed into stripes so far.
    pub sealed_elements: u64,
    /// Full stripes written.
    pub stripes: u64,
    /// Bytes sitting in the unsealed write buffer.
    pub pending_bytes: usize,
    /// Currently failed disks.
    pub failed_disks: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_range_basics() {
        let m = ObjectMeta { offset: 0, len: 10 };
        assert_eq!(m.element_range(4), (0, 3)); // bytes 0..10 -> elems 0,1,2
        let m = ObjectMeta { offset: 4, len: 4 };
        assert_eq!(m.element_range(4), (1, 2));
        let m = ObjectMeta { offset: 5, len: 2 };
        assert_eq!(m.element_range(4), (1, 2));
        let m = ObjectMeta { offset: 5, len: 6 };
        assert_eq!(m.element_range(4), (1, 3));
    }

    #[test]
    fn scrub_report_cleanliness() {
        let clean = ScrubReport {
            stripes_checked: 4,
            ..Default::default()
        };
        assert!(clean.is_clean());
        let dirty = ScrubReport {
            stripes_checked: 4,
            corrupt_groups: vec![(1, 2)],
            ..Default::default()
        };
        assert!(!dirty.is_clean());
        let pinpointed = ScrubReport {
            stripes_checked: 4,
            corrupt_elements: vec![(1, 17)],
            ..Default::default()
        };
        assert!(!pinpointed.is_clean());
    }

    #[test]
    fn stripe_manifest_localizes_and_rejects() {
        let key = HashKey::DEFAULT;
        let elements: Vec<Vec<u8>> = (0..12).map(|i| vec![i as u8; 64]).collect();
        let leaves: Vec<u128> = elements
            .iter()
            .enumerate()
            .map(|(i, e)| leaf_hash(&key, i as u64, e))
            .collect();
        let m = StripeManifest::new(MerkleTree::from_leaves(&key, leaves));
        assert_eq!(m.n_elements(), 12);
        for (i, e) in elements.iter().enumerate() {
            assert!(m.verify_element(&key, i, e));
        }
        // Wrong bytes and right-bytes-wrong-slot both fail.
        assert!(!m.verify_element(&key, 3, &[0xFFu8; 64]));
        assert!(!m.verify_element(&key, 3, &elements[4]));
    }

    #[test]
    fn empty_object_spans_nothing() {
        let m = ObjectMeta { offset: 8, len: 0 };
        let (a, b) = m.element_range(4);
        assert!(
            b <= a + 1,
            "empty object should span at most its start element"
        );
    }
}
